"""Micro-batched prediction service over an incremental context store.

:class:`PredictionService` closes the serving loop: edge micro-batches are
ingested into an :class:`~repro.serving.store.IncrementalContextStore`,
concurrent queries are grouped into micro-batches, materialised against the
live state, and scored with a trained SLIM — recording per-query latency
percentiles (p50/p99) and ingest/query throughput along the way.

Two execution modes share one code path:

* **synchronous** — ingest and scoring alternate on the caller's thread;
* **background** (``serve_stream(..., background=True)``) — a producer
  thread drives the strictly-ordered state mutations (ingest + bundle
  materialisation) while the caller's thread runs the model forward on
  already-materialised bundles.  Materialised bundles are standalone
  copies, so ingest of batch N+1 safely overlaps scoring of batch N: this
  is the serving half of the ROADMAP's async-prefetch item.

Both modes produce identical scores; the §III ordering (a query sees
exactly the edges with t(l) ≤ t, edges winning ties) is enforced via the
interleave's edge-count watermark, never wall-clock time.

Hot swap: :meth:`PredictionService.hot_swap` replaces the scoring model
between micro-batches under a lock — in-flight queries finish on the old
weights, subsequent batches use the new ones, and the store (whose state
depends only on the feature processes) keeps serving throughout.
"""

from __future__ import annotations

import contextlib
import queue as queue_mod
import threading
import time as time_mod
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.models.base import ContextModel
from repro.models.context import ContextBundle
from repro.nn.backend import active_backend, use_backend
from repro.obs.metrics import Histogram
from repro.nn.tensor import default_dtype, get_default_dtype
from repro.serving.config import ServingConfig, resolve_serving_config
from repro.serving.persistence import PersistenceManager
from repro.serving.store import IncrementalContextStore
from repro.streams.ctdg import CTDG
from repro.streams.replay import iter_interleave
from repro.tasks.base import Task
from repro.utils.logging import get_logger

logger = get_logger("serving")


@dataclass
class ServiceMetrics:
    """Running latency/throughput accounting for one service instance."""

    ingest_events: int = 0
    ingest_batches: int = 0
    ingest_seconds: float = 0.0
    query_count: int = 0
    batch_count: int = 0
    materialise_seconds: float = 0.0
    score_seconds: float = 0.0
    wall_seconds: float = 0.0
    # (latency_seconds, num_queries) per scored micro-batch; every query in
    # a batch is assigned its batch's latency (materialise + score).  The
    # window is bounded so a long-lived service's memory stays O(window),
    # not O(queries ever served).  Percentile *reads* go through the shared
    # log-scale :class:`repro.obs.metrics.Histogram` — the same vocabulary
    # fleet metrics use — so they cost O(buckets), not O(window); the deque
    # remains the exact windowed record (``exact_latency_ms``).
    LATENCY_WINDOW = 65536
    batch_latencies: Deque[Tuple[float, int]] = field(
        default_factory=lambda: deque(maxlen=ServiceMetrics.LATENCY_WINDOW)
    )
    latency_hist: Histogram = field(default_factory=Histogram)

    def record_ingest(self, events: int, seconds: float) -> None:
        self.ingest_events += events
        self.ingest_batches += 1
        self.ingest_seconds += seconds

    def record_batch(
        self, queries: int, materialise_seconds: float, score_seconds: float
    ) -> None:
        self.query_count += queries
        self.batch_count += 1
        self.materialise_seconds += materialise_seconds
        self.score_seconds += score_seconds
        latency = materialise_seconds + score_seconds
        self.batch_latencies.append((latency, queries))
        self.latency_hist.observe(latency, queries)

    # ------------------------------------------------------------------
    def latency_ms(self, percentile: float) -> float:
        """Per-query latency percentile in milliseconds (O(buckets) read)."""
        return self.latency_hist.percentile(percentile) * 1000.0

    def latencies_ms(self, percentiles: Tuple[float, ...]) -> Tuple[float, ...]:
        """Several percentiles from one cumulative histogram pass."""
        return tuple(
            p * 1000.0 for p in self.latency_hist.percentiles(percentiles)
        )

    def exact_latency_ms(self, *percentiles: float) -> Tuple[float, ...]:
        """Exact windowed percentiles, all from a single ``np.repeat`` pass.

        The histogram covers the full service lifetime within one bucket
        ratio; this materialises the per-query array once for the recent
        ``LATENCY_WINDOW`` batches and answers every requested percentile
        from it (the old per-read rebuild paid this per percentile).
        """
        if not self.batch_latencies:
            return tuple(0.0 for _ in percentiles)
        seconds = np.array([lat for lat, _ in self.batch_latencies])
        counts = np.array([n for _, n in self.batch_latencies])
        per_query = np.repeat(seconds, counts)
        values = np.percentile(per_query, list(percentiles))
        return tuple(float(v) * 1000.0 for v in np.atleast_1d(values))

    @property
    def p50_ms(self) -> float:
        return self.latency_ms(50.0)

    @property
    def p99_ms(self) -> float:
        return self.latency_ms(99.0)

    @property
    def ingest_events_per_sec(self) -> float:
        if self.ingest_seconds <= 0:
            return 0.0
        return self.ingest_events / self.ingest_seconds

    @property
    def queries_per_sec(self) -> float:
        busy = self.materialise_seconds + self.score_seconds
        if busy <= 0:
            return 0.0
        return self.query_count / busy

    def summary(self) -> dict:
        p50, p99 = self.latencies_ms((50.0, 99.0))
        return {
            "ingest_events": self.ingest_events,
            "ingest_events_per_s": round(self.ingest_events_per_sec, 1),
            "query_count": self.query_count,
            "batch_count": self.batch_count,
            "query_p50_ms": round(p50, 4),
            "query_p99_ms": round(p99, 4),
            "queries_per_s": round(self.queries_per_sec, 1),
            "wall_seconds": round(self.wall_seconds, 4),
        }


class PredictionService:
    """Scores live queries against an incremental context store.

    Parameters
    ----------
    model:
        A trained :class:`~repro.models.base.ContextModel` (typically SLIM).
    store:
        The incremental context store the model's features live in; its
        ``k`` and feature processes must match what the model trained on.
    task:
        Optional task providing the logits→scores transform (bound via
        :meth:`~repro.models.base.ContextModel.bind_task`); scoring then
        runs the exact :meth:`predict_scores` path the offline evaluator
        uses.  Without a task, raw logits (or ``scores_fn`` of them) are
        returned.
    micro_batch_size:
        Upper bound on queries per materialise/forward round trip (query
        runs shorter than this — queries interleaved with edges — score as
        their own batch).  Defaults to the model's training ``batch_size``.
        Materialised contexts are bit-identical to the offline bundle's
        rows regardless; scores agree with the offline evaluator to
        floating-point rounding (forward-pass batch boundaries differ, so
        BLAS accumulation order may, too).
    dtype:
        Precision to score under ("float32"/"float64"); defaults to the
        ambient default.  Pass the pipeline's fit dtype (artifacts record
        it) so inference matches training precision.  Caveat: the nn
        backend's default dtype is process-global, so when this differs
        from the ambient default, scoring temporarily flips it — training
        concurrently *in the same process* at a different precision is not
        supported (run retraining in its own process, then hot-swap the
        saved artifact in).
    backend:
        Array backend (:mod:`repro.nn.backend`) to ingest and score under;
        defaults to the ambient backend.  ``from_splash`` passes the
        pipeline's fit backend.  Results are bit-identical across
        registered backends, so this is a throughput knob with the same
        process-global caveat as ``dtype``.
    """

    def __init__(
        self,
        model: ContextModel,
        store: IncrementalContextStore,
        *,
        task: Optional[Task] = None,
        scores_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        micro_batch_size: Optional[int] = None,
        dtype: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> None:
        if micro_batch_size is not None and micro_batch_size <= 0:
            raise ValueError(
                f"micro_batch_size must be positive, got {micro_batch_size}"
            )
        self.store = store
        self.scores_fn = scores_fn
        self.micro_batch_size = (
            micro_batch_size
            if micro_batch_size is not None
            else model.config.batch_size
        )
        self._dtype = dtype
        self._backend = backend
        self._swap_lock = threading.Lock()
        self._task = task
        self.model = model
        if task is not None:
            model.bind_task(task)
        self.metrics = ServiceMetrics()
        self._persistence: Optional[PersistenceManager] = None
        self._telemetry_server = None
        self._telemetry_engine = None
        self._owns_telemetry_engine = False

    # ------------------------------------------------------------------
    @property
    def persistence(self) -> Optional[PersistenceManager]:
        return self._persistence

    # ------------------------------------------------------------------
    @property
    def telemetry(self):
        """The attached ``TelemetryServer`` (``None`` until started)."""
        return self._telemetry_server

    @property
    def health(self):
        """The attached ``SloEngine`` (``None`` until telemetry starts)."""
        return self._telemetry_engine

    def start_telemetry(
        self,
        port: int = 0,
        *,
        host: str = "127.0.0.1",
        rules=None,
        engine=None,
        slo_interval: float = 2.0,
    ):
        """Expose this service's telemetry over HTTP; returns the server.

        Starts an ``obs.http.TelemetryServer`` on ``port`` (0 = ephemeral;
        read ``server.port``) backed by the shared registry, with an
        ``obs.slo.SloEngine`` answering ``/healthz``.  Pass ``rules`` to
        replace :func:`repro.obs.slo.default_serving_rules`, or a running
        ``engine`` to share one across services.  The engine is handed the
        process flight recorder (if enabled) so SLO breaches dump a
        post-mortem, and ``/statusz`` includes this service's summary.
        """
        if self._telemetry_server is not None:
            return self._telemetry_server
        from repro import obs
        from repro.obs.http import TelemetryServer
        from repro.obs.slo import SloEngine, default_serving_rules

        if engine is None:
            engine = SloEngine(
                rules if rules is not None else default_serving_rules(),
                interval=slo_interval,
                flight=obs.get_flight_recorder(),
            ).start()
            self._owns_telemetry_engine = True
        else:
            self._owns_telemetry_engine = False
        server = TelemetryServer(
            port=port,
            host=host,
            health=engine,
            statusz_extra=self.metrics.summary,
        )
        server.start()
        self._telemetry_server = server
        self._telemetry_engine = engine
        return server

    def stop_telemetry(self) -> None:
        """Stop the HTTP exposition (and the SLO ticker this service owns)."""
        server = self._telemetry_server
        self._telemetry_server = None
        if server is not None:
            server.stop()
        engine = self._telemetry_engine
        self._telemetry_engine = None
        if engine is not None and self._owns_telemetry_engine:
            engine.stop()
        self._owns_telemetry_engine = False

    def attach_persistence(self, manager: Optional[PersistenceManager]) -> None:
        """Bind a :class:`~repro.serving.persistence.PersistenceManager`.

        The manager's journal must already be attached to this service's
        store (``PersistenceManager.create``/``resume`` do that); the
        service only adds snapshot cadence — after each ingest batch it
        asks the manager whether ``snapshot_every`` edges have passed.
        ``None`` detaches (the journal keeps running; detach that on the
        store explicitly if persistence should stop entirely).
        """
        if manager is not None and manager.store is not self.store:
            raise ValueError(
                "persistence manager is bound to a different store than "
                "this service serves"
            )
        self._persistence = manager

    # ------------------------------------------------------------------
    def _apply_config(self, config: ServingConfig) -> None:
        """Wire the deployment knobs of a resolved config into this service."""
        if config.drift_monitor is not None:
            self.store.attach_monitor(config.drift_monitor)
        if config.telemetry_port is not None:
            self.start_telemetry(
                config.telemetry_port,
                host=config.telemetry_host,
                rules=config.slo_rules,
                slo_interval=config.slo_interval,
            )

    @classmethod
    def from_splash(
        cls,
        splash,
        num_nodes: int,
        edge_feature_dim: Optional[int] = None,
        config: Optional[ServingConfig] = None,
        *,
        task: Optional[Task] = None,
        scores_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        owner: Optional[tuple] = None,
        **deprecated_kwargs,
    ) -> "PredictionService":
        """Service around a fitted (or loaded) :class:`~repro.pipeline.Splash`.

        Builds a fresh store from the pipeline's fitted processes — ready
        to ingest a live stream from t = 0 — and scores at the pipeline's
        training precision.  ``edge_feature_dim`` defaults to what the
        model trained on (artifacts record it).

        Deployment knobs live in ``config`` (:class:`ServingConfig`):
        persistence root + snapshot cadence (restart later with
        :meth:`resume`, which replays only the post-snapshot tail),
        micro-batch size, dtype/backend overrides, telemetry exposition,
        and drift-monitor attachment.  ``config.num_shards`` ≥ 2 is a
        *fleet* spec — use :func:`repro.serving.serve` for that; this
        constructor always builds one in-process service.  The pre-config
        flat keywords (``persist_path=``, ``snapshot_every=``,
        ``micro_batch_size=``, ``dtype=``, ``backend=``) still work but
        are deprecated (one warning each); unknown keywords raise.

        ``owner`` is the fleet-internal ``(shard_index, num_shards)``
        store-partitioning spec (:mod:`repro.serving.fleet` passes it for
        its workers); it does not change this service's API.
        """
        config = resolve_serving_config(
            config, deprecated_kwargs, where="from_splash"
        )
        if config.snapshot_every is not None and config.persist_path is None:
            warnings.warn(
                "snapshot_every has no effect without persist_path; "
                "snapshots are cut into the persistence root",
                UserWarning,
                stacklevel=2,
            )
        if config.num_shards >= 2 and owner is None:
            raise ValueError(
                f"config.num_shards={config.num_shards} requests a serving "
                "fleet; build it with repro.serving.serve(splash, config) — "
                "from_splash constructs a single in-process service"
            )
        if splash.model is None or not splash.processes:
            raise RuntimeError(
                "Splash has no trained model/processes; fit() or load() first"
            )
        if edge_feature_dim is None:
            edge_feature_dim = splash.model.edge_feature_dim
        store = IncrementalContextStore(
            splash.processes,
            splash.config.k,
            num_nodes,
            edge_feature_dim,
            propagation=splash.config.execution.propagation,
            owner=owner,
        )
        service = cls(
            splash.model,
            store,
            task=task,
            scores_fn=scores_fn,
            micro_batch_size=config.micro_batch_size,
            dtype=config.dtype if config.dtype is not None else splash.fit_dtype,
            backend=(
                config.backend if config.backend is not None else splash.fit_backend
            ),
        )
        if config.persist_path is not None:
            manager_kwargs = {}
            if config.snapshot_every is not None:
                manager_kwargs["snapshot_every"] = config.snapshot_every
            service.attach_persistence(
                PersistenceManager.create(
                    config.persist_path, splash, store, **manager_kwargs
                )
            )
        service._apply_config(config)
        return service

    @classmethod
    def resume(
        cls,
        persist_path: str,
        *,
        verify: bool = True,
        config: Optional[ServingConfig] = None,
        task: Optional[Task] = None,
        scores_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        **deprecated_kwargs,
    ) -> "PredictionService":
        """Warm-restart a service from a persistence root.

        O(1) in stream length: the artifact is reloaded, the newest valid
        snapshot's dense tables are memory-mapped copy-on-write, and only
        the durable log's unsnapshotted suffix is replayed.  The resumed
        store materialises bit-for-bit what a cold replay of the whole
        durable log would (gated by ``benchmarks/bench_restart.py``).

        ``config`` carries the same deployment knobs as
        :meth:`from_splash`, except the persistence root — that is the
        positional argument here, so ``config.persist_path`` must be
        unset.  Flat keywords are accepted with the same deprecation
        policy.
        """
        config = resolve_serving_config(config, deprecated_kwargs, where="resume")
        if config.persist_path is not None:
            raise ValueError(
                "resume takes the persistence root positionally; leave "
                "config.persist_path unset"
            )
        splash, store, manager = PersistenceManager.resume(
            persist_path, verify=verify, snapshot_every=config.snapshot_every
        )
        service = cls(
            splash.model,
            store,
            task=task,
            scores_fn=scores_fn,
            micro_batch_size=config.micro_batch_size,
            dtype=config.dtype if config.dtype is not None else splash.fit_dtype,
            backend=(
                config.backend if config.backend is not None else splash.fit_backend
            ),
        )
        service.attach_persistence(manager)
        service._apply_config(config)
        logger.info(
            "resumed service from %s: %d edges live, %d durable in the log",
            persist_path,
            store.edges_ingested,
            manager.durable_events,
        )
        return service

    # ------------------------------------------------------------------
    def _backend_context(self):
        """Flip to the configured array backend only when it differs from
        the ambient one — same process-global caveat as the dtype flip."""
        if self._backend and self._backend != active_backend().name:
            return use_backend(self._backend)
        return contextlib.nullcontext()

    def ingest(self, edges: CTDG) -> int:
        """Timed ingest of one edge micro-batch (under the configured
        array backend — the store's gathers/scatters route through it)."""
        start = time_mod.perf_counter()
        with obs.span("serving.ingest", batch=edges.num_edges):
            with self._backend_context():
                count = self.store.ingest(edges)
        self.metrics.record_ingest(count, time_mod.perf_counter() - start)
        obs.inc("serving.ingest.events", count)
        if self._persistence is not None:
            self._persistence.maybe_snapshot()
        return count

    def _ingest_arrays(self, src, dst, times, features, weights) -> int:
        start = time_mod.perf_counter()
        with obs.span("serving.ingest", batch=len(src)):
            with self._backend_context():
                count = self.store.ingest_arrays(
                    src, dst, times, features, weights
                )
        self.metrics.record_ingest(count, time_mod.perf_counter() - start)
        obs.inc("serving.ingest.events", count)
        if self._persistence is not None:
            self._persistence.maybe_snapshot()
        return count

    def hot_swap(
        self,
        model: ContextModel,
        *,
        store: Optional[IncrementalContextStore] = None,
        dtype: Optional[str] = None,
        backend: Optional[str] = None,
        scores_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> None:
        """Replace the scoring model without interrupting service.

        Without ``store``, the replacement must consume the same feature
        space the current store serves — same selected process, feature
        dim, and edge-feature dim — because the store's state cannot be
        retrofitted to different features.  With ``store``, a
        model+store *pair* is swapped in together (the adaptation loop's
        promotion path: a windowed re-fit may select a different process,
        so it arrives with its own warmed store); the pair must be
        self-consistent instead — the new store must materialise the new
        model's feature space and edge-feature width, and its ``k`` must
        match.

        Either way the swap is a pointer flip under the scoring lock:
        queries already being scored finish on the old model, the next
        micro-batch uses the new one; no queries are dropped.  A batch
        materialised from the old store may score on the new model (both
        feature spaces are validated compatible); use an external ingest
        lock (as :class:`repro.adapt.AdaptiveService` does) when even that
        one-batch overlap must be excluded.
        """
        current = self.model
        if store is None:
            for attr in ("feature_name", "feature_dim", "edge_feature_dim"):
                new, old = getattr(model, attr, None), getattr(current, attr, None)
                if new != old:
                    raise ValueError(
                        f"hot_swap {attr} mismatch: service serves {old!r}, "
                        f"replacement expects {new!r}"
                    )
        else:
            if store.k != self.store.k:
                raise ValueError(
                    f"hot_swap k mismatch: service serves k={self.store.k}, "
                    f"replacement store has k={store.k}"
                )
            feature_name = getattr(model, "feature_name", None)
            if feature_name is not None and feature_name not in store.feature_names:
                raise ValueError(
                    f"hot_swap store cannot materialise {feature_name!r}; "
                    f"it serves {store.feature_names}"
                )
            model_dim = getattr(model, "feature_dim", None)
            if (
                feature_name is not None
                and model_dim is not None
                and store.feature_dim(feature_name) != model_dim
            ):
                raise ValueError(
                    f"hot_swap feature_dim mismatch: replacement model "
                    f"expects {model_dim}-dim {feature_name!r} features, its "
                    f"store materialises {store.feature_dim(feature_name)}-dim"
                )
            if getattr(model, "edge_feature_dim", 0) != store.edge_feature_dim:
                raise ValueError(
                    f"hot_swap edge_feature_dim mismatch: replacement model "
                    f"expects {getattr(model, 'edge_feature_dim', 0)}, its "
                    f"store serves {store.edge_feature_dim}"
                )
        # Output width must match too: serve_stream sizes its result array
        # from the first chunk, so a mid-stream width change would discard
        # every score already computed.
        current_dims = getattr(getattr(current, "decoder", None), "dims", None)
        new_dims = getattr(getattr(model, "decoder", None), "dims", None)
        if current_dims and new_dims and current_dims[-1] != new_dims[-1]:
            raise ValueError(
                f"hot_swap output_dim mismatch: service serves "
                f"{current_dims[-1]}, replacement produces {new_dims[-1]}"
            )
        with self._swap_lock:
            if self._task is not None:
                model.bind_task(self._task)
            self.model = model
            if store is not None:
                self.store = store
            if dtype is not None:
                self._dtype = dtype
            if backend is not None:
                self._backend = backend
            if scores_fn is not None:
                self.scores_fn = scores_fn
        obs.inc("serving.hot_swaps")
        logger.info(
            "hot-swapped model (dtype=%s, backend=%s%s)",
            self._dtype,
            self._backend,
            ", with store" if store is not None else "",
        )

    # ------------------------------------------------------------------
    def _score_bundle(self, bundle: ContextBundle) -> np.ndarray:
        """Model forward on one materialised micro-batch."""
        idx = np.arange(bundle.num_queries, dtype=np.int64)
        with self._swap_lock:
            # Everything configuration-dependent — model, dtype, *and* the
            # score transform — is captured under the one lock acquisition,
            # so a concurrent hot_swap can never pair one model's logits
            # with another's transform.
            model = self.model
            scores_fn = self.scores_fn
            # The nn backend's precision is a process-wide default; only
            # flip it when the service actually needs a different one, and
            # note the caveat: scoring at a precision that differs from a
            # concurrently-training thread's is not supported (the dtype
            # switch is global, not thread-local).
            if self._dtype and np.dtype(self._dtype) != get_default_dtype():
                context = default_dtype(self._dtype)
            else:
                context = contextlib.nullcontext()
            with context, self._backend_context():
                if self._task is not None:
                    return model.predict_scores(bundle, idx)
                logits = model.predict_logits(bundle, idx)
        if scores_fn is not None:
            return scores_fn(logits)
        return logits

    def _empty_scores(self) -> np.ndarray:
        """Zero-query result with the decoder's true output width."""
        decoder_dims = getattr(getattr(self.model, "decoder", None), "dims", None)
        output_dim = int(decoder_dims[-1]) if decoder_dims else 1
        return np.zeros((0, output_dim))

    def predict(
        self, nodes: np.ndarray, times: np.ndarray
    ) -> np.ndarray:
        """Score queries against the store's *current* state.

        Splits into micro-batches of ``micro_batch_size``; each batch is
        materialised then scored, and its wall-clock recorded as every
        member query's latency.  The caller guarantees the prefix contract
        (see :meth:`IncrementalContextStore.materialise`).
        """
        nodes = np.asarray(nodes, dtype=np.int64).ravel()
        times = np.broadcast_to(np.asarray(times, dtype=np.float64), nodes.shape)
        outputs = []
        for lo in range(0, len(nodes), self.micro_batch_size):
            hi = min(lo + self.micro_batch_size, len(nodes))
            t0 = time_mod.perf_counter()
            with obs.span("serving.materialise", queries=hi - lo):
                bundle = self.store.materialise(nodes[lo:hi], times[lo:hi])
            t1 = time_mod.perf_counter()
            with obs.span("serving.score", queries=hi - lo):
                outputs.append(self._score_bundle(bundle))
            self.metrics.record_batch(
                hi - lo, t1 - t0, time_mod.perf_counter() - t1
            )
            obs.inc("serving.queries", hi - lo)
        if not outputs:
            return self._empty_scores()
        return np.concatenate(outputs, axis=0)

    # ------------------------------------------------------------------
    def serve_stream(
        self,
        ctdg: CTDG,
        query_nodes: np.ndarray,
        query_times: np.ndarray,
        *,
        ingest_batch: int = 1024,
        background: bool = True,
        prefetch_depth: int = 4,
    ) -> np.ndarray:
        """Replay a recorded stream through the service, returning scores.

        The edge/query interleave is planned with
        :func:`repro.streams.replay.iter_interleave` (edges win timestamp
        ties, §III), edges are ingested in micro-batches of
        ``ingest_batch``, and each query block is scored in micro-batches
        of ``micro_batch_size``.  With ``background=True`` the ordered
        state mutations (ingest + materialise) run on a producer thread
        while this thread runs the model forward — identical scores,
        overlapped wall-clock.
        """
        if ingest_batch <= 0:
            raise ValueError(f"ingest_batch must be positive, got {ingest_batch}")
        query_nodes = np.asarray(query_nodes, dtype=np.int64)
        query_times = np.asarray(query_times, dtype=np.float64)
        has_features = ctdg.edge_features is not None
        start_wall = time_mod.perf_counter()

        def materialised_chunks():
            """Ordered ingest + materialisation; yields scored-ready work."""
            for kind, lo, hi in iter_interleave(
                ctdg.times, query_times, max_block=ingest_batch
            ):
                if kind == "edges":
                    self._ingest_arrays(
                        ctdg.src[lo:hi],
                        ctdg.dst[lo:hi],
                        ctdg.times[lo:hi],
                        ctdg.edge_features[lo:hi] if has_features else None,
                        ctdg.weights[lo:hi],
                    )
                    continue
                for c_lo in range(lo, hi, self.micro_batch_size):
                    c_hi = min(c_lo + self.micro_batch_size, hi)
                    t0 = time_mod.perf_counter()
                    with obs.span("serving.materialise", queries=c_hi - c_lo):
                        bundle = self.store.materialise(
                            query_nodes[c_lo:c_hi], query_times[c_lo:c_hi]
                        )
                    yield c_lo, c_hi, bundle, time_mod.perf_counter() - t0

        chunks: List[Tuple[int, int, np.ndarray]] = []

        def consume(item) -> None:
            c_lo, c_hi, bundle, materialise_s = item
            t1 = time_mod.perf_counter()
            with obs.span("serving.score", queries=c_hi - c_lo):
                scores = self._score_bundle(bundle)
            self.metrics.record_batch(
                c_hi - c_lo, materialise_s, time_mod.perf_counter() - t1
            )
            obs.inc("serving.queries", c_hi - c_lo)
            chunks.append((c_lo, c_hi, scores))

        if background:
            work: queue_mod.Queue = queue_mod.Queue(maxsize=max(prefetch_depth, 1))
            _DONE = object()
            stop = threading.Event()

            def offer(item) -> bool:
                """Put with a stop check, so a dead consumer (scoring
                raised) never leaves this thread blocked on a full queue."""
                while not stop.is_set():
                    try:
                        work.put(item, timeout=0.1)
                        return True
                    except queue_mod.Full:
                        continue
                return False

            def producer() -> None:
                try:
                    for item in materialised_chunks():
                        if not offer(item):
                            return
                    offer(_DONE)
                except BaseException as error:  # surfaced on the consumer side
                    # The exception is swallowed here (handed across the
                    # queue), so threading.excepthook never fires — record
                    # the crash into the flight recorder explicitly.
                    obs.record_crash("serving-ingest", error)
                    offer(error)

            thread = threading.Thread(
                target=producer, name="serving-ingest", daemon=True
            )
            thread.start()
            try:
                while True:
                    # Bounded wait so a producer that dies without
                    # delivering its exception (e.g. killed, or a bug in
                    # the error path itself) can never strand this thread
                    # on an empty queue forever.
                    try:
                        item = work.get(timeout=1.0)
                    except queue_mod.Empty:
                        if not thread.is_alive():
                            raise RuntimeError(
                                "serving-ingest producer thread died "
                                "without delivering a result or exception"
                            ) from None
                        continue
                    if item is _DONE:
                        break
                    if isinstance(item, BaseException):
                        raise item
                    if obs.enabled():
                        # Ingest lag: materialised work waiting to score.
                        obs.set_gauge("serving.ingest.backlog", work.qsize())
                    consume(item)
            finally:
                stop.set()
                thread.join(timeout=30.0)
        else:
            for item in materialised_chunks():
                consume(item)

        self.metrics.wall_seconds += time_mod.perf_counter() - start_wall
        if not chunks:
            return self._empty_scores()
        first = chunks[0][2]
        out_shape = (len(query_nodes),) + first.shape[1:]
        scores_out = np.zeros(out_shape, dtype=first.dtype)
        for c_lo, c_hi, scores in chunks:
            scores_out[c_lo:c_hi] = scores
        return scores_out


