"""Serving configuration: one nested dataclass instead of kwargs sprawl.

:class:`ServingConfig` collects every *deployment* knob of the serving
plane — micro-batch size, precision/backend overrides, persistence root and
snapshot cadence, telemetry exposition, drift-monitor attachment, and the
fleet shard count — mirroring how :class:`repro.pipeline.ExecutionConfig`
collects the offline pipeline's execution knobs.  *What* is served (model,
feature processes, k) always comes from the :class:`~repro.pipeline.Splash`
artifact; *how* it is served lives here.

``PredictionService.from_splash``/``resume`` historically took these knobs
as flat keyword arguments (``persist_path=``, ``snapshot_every=``,
``micro_batch_size=``, ``dtype=``, ``backend=``).  The flat spellings are
still accepted, but each emits one :class:`DeprecationWarning` per process
and they will be removed in two releases; mixing them with an explicit
``config=`` is an error, and unrecognised keywords are rejected with a
message naming the valid options (they used to surface as an opaque
``TypeError`` from the constructor).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Optional, Sequence


@dataclass
class ServingConfig:
    """*How* a trained pipeline is served — never *what* it predicts.

    Passed to :func:`repro.serving.serve` (the front door),
    ``PredictionService.from_splash`` and ``PredictionService.resume``.
    With ``num_shards`` ≤ 1 the same config describes a single in-process
    service; with ``num_shards`` ≥ 2 it describes a
    :class:`~repro.serving.fleet.FleetRouter` over that many worker
    processes — every other knob applies per worker (each shard gets its
    own persistence root under ``persist_path`` and its own registry,
    pooled under ``proc=shardN`` labels at the router's ``/metrics``).
    """

    # Queries per materialise/forward round trip.  None → the model's
    # training batch_size.  Also the router's merge granularity: the fleet
    # scores the same micro-batch boundaries as a single service, which is
    # what makes fleet scores bit-identical, not merely close.
    micro_batch_size: Optional[int] = None
    # Scoring precision ("float32"/"float64").  None → the pipeline's fit
    # dtype (artifacts record it), keeping inference at training precision.
    dtype: Optional[str] = None
    # Array backend (repro.nn.backend).  None → the pipeline's fit backend.
    backend: Optional[str] = None
    # Horizontal fan-out: ≤ 1 serves in-process, ≥ 2 starts that many
    # worker processes partitioned by endpoint hash
    # (:func:`repro.streams.replay.endpoint_shard`).
    num_shards: int = 0
    # Durable serving state (repro.serving.persistence).  None → no
    # persistence.  For a fleet this is the *parent* directory: shard i
    # persists under ``<persist_path>/shard<i>`` and warm-restarts from
    # there instead of replaying its history.
    persist_path: Optional[str] = None
    # Snapshot cadence in ingested edges (None → the persistence manager's
    # default).  Meaningful with ``persist_path``, or with ``resume()``
    # where the root arrives positionally.
    snapshot_every: Optional[int] = None
    # Telemetry HTTP exposition (/metrics, /healthz, /statusz).  None → no
    # server; an integer starts one (0 binds an ephemeral port — read it
    # back from the service/router).  A fleet exposes ONE server at the
    # router, serving every shard's registry pooled under ``proc`` labels.
    telemetry_port: Optional[int] = None
    telemetry_host: str = "127.0.0.1"
    # SLO rules for /healthz (None → repro.obs.slo.default_serving_rules).
    slo_rules: Optional[Sequence[Any]] = None
    slo_interval: float = 2.0
    # Drift monitor attached to the store's ingest path (anything with the
    # repro.adapt.DriftMonitor.observe_edges signature).  In a fleet the
    # monitor must be picklable; each worker observes the full stream, so
    # drift statistics match the single-process deployment.
    drift_monitor: Optional[Any] = None
    # Fleet catch-up ring: how many recent ingest micro-batches the router
    # retains so a restarted worker can replay what its durable state
    # missed without a full-history replay.
    catchup_ring: int = 256

    def __post_init__(self) -> None:
        if self.micro_batch_size is not None:
            if not isinstance(self.micro_batch_size, int) or isinstance(
                self.micro_batch_size, bool
            ):
                raise ValueError(
                    "micro_batch_size must be an int or None, "
                    f"got {self.micro_batch_size!r}"
                )
            if self.micro_batch_size <= 0:
                raise ValueError(
                    f"micro_batch_size must be positive, got {self.micro_batch_size}"
                )
        if self.dtype is not None and self.dtype not in ("float32", "float64"):
            raise ValueError(
                f"dtype must be 'float32', 'float64' or None, got {self.dtype!r}"
            )
        if self.backend is not None:
            # Fail at construction with the registry's own message.
            from repro.nn.backend import get_backend

            get_backend(self.backend)
        if not isinstance(self.num_shards, int) or isinstance(self.num_shards, bool):
            raise ValueError(f"num_shards must be an int, got {self.num_shards!r}")
        if self.num_shards < 0:
            raise ValueError(
                f"num_shards must be non-negative, got {self.num_shards}"
            )
        if self.snapshot_every is not None and self.snapshot_every <= 0:
            # persist_path is not required here: resume() takes the root
            # positionally and pairs it with a config carrying only the
            # cadence.  from_splash warns when the cadence has no root.
            raise ValueError(
                f"snapshot_every must be positive, got {self.snapshot_every}"
            )
        if self.telemetry_port is not None and not (
            0 <= int(self.telemetry_port) <= 65535
        ):
            raise ValueError(
                "telemetry_port must be in [0, 65535] or None, "
                f"got {self.telemetry_port!r}"
            )
        if self.slo_interval <= 0:
            raise ValueError(
                f"slo_interval must be positive, got {self.slo_interval!r}"
            )
        if not isinstance(self.catchup_ring, int) or self.catchup_ring < 0:
            raise ValueError(
                f"catchup_ring must be a non-negative int, got {self.catchup_ring!r}"
            )


# ----------------------------------------------------------------------
# Flat-kwarg deprecation plumbing (from_splash/resume grew a ``config``
# parameter; the old flat spellings warn once each and disappear in two
# releases).  Mirrors the SplashConfig → ExecutionConfig migration.
# ----------------------------------------------------------------------
_UNSET = object()

#: flat from_splash/resume keyword → ServingConfig field
_FLAT_SERVING_FIELDS = {
    "persist_path": "persist_path",
    "snapshot_every": "snapshot_every",
    "micro_batch_size": "micro_batch_size",
    "dtype": "dtype",
    "backend": "backend",
}

_warned_flat_kwargs: set = set()


def _warn_flat_kwarg(name: str, stacklevel: int = 4) -> None:
    """One ``DeprecationWarning`` per flat keyword per process."""
    if name in _warned_flat_kwargs:
        return
    _warned_flat_kwargs.add(name)
    replacement = _FLAT_SERVING_FIELDS[name]
    warnings.warn(
        f"passing {name}= to PredictionService.from_splash/resume is "
        f"deprecated and will be removed in two releases; use "
        f"config=ServingConfig({replacement}=...) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def _reset_flat_kwarg_warnings() -> None:
    """Testing hook: make every flat-kwarg deprecation fire again."""
    _warned_flat_kwargs.clear()


def resolve_serving_config(
    config: Optional[ServingConfig],
    flat_kwargs: dict,
    *,
    where: str = "from_splash",
) -> ServingConfig:
    """Fold deprecated flat keywords into one :class:`ServingConfig`.

    Rejects unknown keywords with a message naming the valid options
    (historically they fell through ``**kwargs`` into the constructor and
    surfaced as an opaque ``TypeError`` — or worse, were swallowed when a
    later ``setdefault`` happened to mask them), errors on mixing flat
    keywords with an explicit ``config=``, and warns once per flat keyword
    otherwise.
    """
    unknown = sorted(set(flat_kwargs) - set(_FLAT_SERVING_FIELDS))
    if unknown:
        raise ValueError(
            f"unknown keyword argument(s) for {where}: "
            + ", ".join(unknown)
            + "; valid serving options are "
            + ", ".join(sorted(_FLAT_SERVING_FIELDS))
            + " (all deprecated in favour of config=ServingConfig(...))"
        )
    flat = {k: v for k, v in flat_kwargs.items() if v is not None}
    if flat and config is not None:
        raise ValueError(
            "pass serving settings either through config=ServingConfig(...) "
            "or through the deprecated flat keywords, not both: "
            + ", ".join(sorted(flat))
        )
    for name in flat:
        _warn_flat_kwarg(name)
    if config is None:
        config = ServingConfig(
            **{_FLAT_SERVING_FIELDS[k]: v for k, v in flat.items()}
        )
    if not isinstance(config, ServingConfig):
        raise ValueError(f"config must be a ServingConfig, got {config!r}")
    return config
