"""``repro.serving`` — the online serving subsystem.

Offline, this repository answers queries by rematerialising the full
context in one replay (:func:`repro.models.context.build_context_bundle`).
Serving inverts that: edges arrive in micro-batches, state is maintained
*incrementally*, and any query is answered from the current state in O(k)
— with output **bit-for-bit identical** to an offline replay of the same
edge prefix, because the live store and the offline engines share one
state-update core (:class:`repro.models.context.ReplayState`).

Three parts (see DESIGN.md §4):

* :class:`IncrementalContextStore` — ``ingest(edges)`` / ``materialise``
  over the shared replay state;
* :class:`PredictionService` — micro-batched scoring with a trained SLIM,
  background ingest overlap, and p50/p99 latency + throughput metrics;
* :mod:`repro.serving.artifact` — persistent SPLASH artifacts
  (``Splash.save`` / ``Splash.load``) so a pipeline trained once can be
  loaded into the service and hot-swapped without downtime.

The drift-aware adaptation loop that keeps a long-running service
accurate under distribution shift — monitor, re-fit scheduler, shadow
gate, model registry — lives in :mod:`repro.adapt` (DESIGN.md §5) and
plugs in through two seams here: ``IncrementalContextStore.attach_monitor``
and ``PredictionService.hot_swap(model, store=...)``.
"""

from repro.serving.artifact import load_artifact, save_artifact
from repro.serving.service import PredictionService, ServiceMetrics
from repro.serving.store import IncrementalContextStore, incremental_context_bundle

__all__ = [
    "IncrementalContextStore",
    "incremental_context_bundle",
    "PredictionService",
    "ServiceMetrics",
    "save_artifact",
    "load_artifact",
]
