"""``repro.serving`` — the online serving subsystem.

Offline, this repository answers queries by rematerialising the full
context in one replay (:func:`repro.models.context.build_context_bundle`).
Serving inverts that: edges arrive in micro-batches, state is maintained
*incrementally*, and any query is answered from the current state in O(k)
— with output **bit-for-bit identical** to an offline replay of the same
edge prefix, because the live store and the offline engines share one
state-update core (:class:`repro.models.context.ReplayState`).

Three parts (see DESIGN.md §4):

* :class:`IncrementalContextStore` — ``ingest(edges)`` / ``materialise``
  over the shared replay state;
* :class:`PredictionService` — micro-batched scoring with a trained SLIM,
  background ingest overlap, and p50/p99 latency + throughput metrics;
* :mod:`repro.serving.artifact` — persistent SPLASH artifacts
  (``Splash.save`` / ``Splash.load``) so a pipeline trained once can be
  loaded into the service and hot-swapped without downtime;
* :mod:`repro.serving.persistence` — durable serving state: an
  append-only memory-mapped segment log of every ingested edge, periodic
  zero-copy store snapshots, and a manifest binding them to the artifact —
  so ``PredictionService.resume(path)`` warm-restarts in O(tail) instead
  of O(stream), bit-for-bit equal to a cold replay (DESIGN.md §6).

The drift-aware adaptation loop that keeps a long-running service
accurate under distribution shift — monitor, re-fit scheduler, shadow
gate, model registry — lives in :mod:`repro.adapt` (DESIGN.md §5) and
plugs in through two seams here: ``IncrementalContextStore.attach_monitor``
and ``PredictionService.hot_swap(model, store=...)``.
"""

from repro.serving.artifact import load_artifact, save_artifact
from repro.serving.config import ServingConfig
from repro.serving.fleet import (
    FleetRouter,
    FleetWorkerError,
    ServingClient,
    serve,
)
from repro.serving.persistence import (
    EventLog,
    PersistenceManager,
    SegmentCorruption,
    SegmentReader,
    SegmentWriter,
    SnapshotCorruption,
    load_snapshot,
    write_snapshot,
)
from repro.serving.service import PredictionService, ServiceMetrics
from repro.serving.store import IncrementalContextStore, incremental_context_bundle

__all__ = [
    "ServingConfig",
    "serve",
    "ServingClient",
    "FleetRouter",
    "FleetWorkerError",
    "IncrementalContextStore",
    "incremental_context_bundle",
    "PredictionService",
    "ServiceMetrics",
    "save_artifact",
    "load_artifact",
    "PersistenceManager",
    "EventLog",
    "SegmentWriter",
    "SegmentReader",
    "SegmentCorruption",
    "SnapshotCorruption",
    "write_snapshot",
    "load_snapshot",
]
