"""Incremental context store: live ingestion of edge streams for serving.

The offline engines replay a *complete* stream to materialise every query's
context at once.  Serving cannot wait for the stream to end: edges arrive
in micro-batches and queries must be answered from whatever prefix has
arrived.  :class:`IncrementalContextStore` maintains exactly the online
state the replay engines build — degrees (Eq. 2), the feature stores'
propagation state (Eqs. 4-5, including unseen-node snapshots), and the
k-recent neighbour tails (Eq. 6) — by driving the *same* state-update core
(:class:`repro.models.context.ReplayState`) that the per-event offline
collector uses.  Consequently :meth:`IncrementalContextStore.materialise`
is bit-for-bit identical to an offline
:func:`~repro.models.context.build_context_bundle` replay of the ingested
prefix, a property asserted under fuzzing by
``tests/serving/test_incremental_store.py`` and guarded in CI.

Memory is the paper's summary bound: O(|V| · k) buffered incidences plus
the per-process tables — independent of how many edges have been ingested.

Thread-safety: ``ingest``/``materialise``/``write_queries`` serialise on an
internal condition variable, so a background ingest thread and a scoring
thread can share one store — how
:class:`repro.serving.service.PredictionService` runs its background mode
(which keeps ingest and materialisation strictly ordered on one producer
thread).  For live setups where ingestion is driven *externally*,
:meth:`wait_for_edges` additionally lets a scorer block on the edge-count
watermark until enough of the stream has arrived.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.features.base import FeatureProcess, OnlineFeatureStore
from repro.models.context import (
    _MIN_VECTOR_RUN,
    ContextBundle,
    ReplayState,
    _QueryOutputs,
    partition_processes,
)
from repro.streams.ctdg import CTDG
from repro.streams.replay import endpoint_shard, iter_interleave, plan_update_blocks
from repro.tasks.base import QuerySet


class IncrementalContextStore:
    """Online replay state with micro-batched ingest and O(k) query reads.

    Parameters
    ----------
    processes:
        Fitted feature processes (the SPLASH candidates, or any subset).
        Classified exactly as :func:`build_context_bundle` classifies them
        (online stores / static tables / lazy structural encoding).
    k:
        Neighbour buffer size (Eq. 6), matching the trained model's k.
    num_nodes:
        Size of the node-id space queries and edges may reference.
    edge_feature_dim:
        Dimension of per-edge features (0 for featureless streams).
    propagation:
        ``"blocked"`` (default) vectorises the hot ingest loop: each
        micro-batch is partitioned into maximal endpoint-disjoint runs
        (:func:`repro.streams.replay.plan_update_blocks`) and every run
        advances the replay state through one
        :meth:`~repro.models.context.ReplayState.apply_edge_block` scatter.
        ``"event"`` drives :meth:`~repro.models.context.ReplayState.apply_edge`
        per event (the reference).  Materialised contexts are bit-for-bit
        identical either way.
    owner:
        Optional ``(shard_index, num_shards)`` fleet-ownership spec
        (:mod:`repro.serving.fleet`).  The store still ingests *every*
        edge — global degrees and feature propagation, which any context
        may transitively depend on, must track the full stream — but the
        expensive per-endpoint context assembly (snapshot copies and
        k-recent buffer inserts) runs only for nodes whose
        :func:`repro.streams.replay.endpoint_shard` equals ``shard_index``.
        Owned nodes' contexts stay bit-for-bit what an unsharded store
        produces; querying a non-owned node raises.
    """

    def __init__(
        self,
        processes: Sequence[FeatureProcess],
        k: int,
        num_nodes: int,
        edge_feature_dim: int = 0,
        propagation: str = "blocked",
        owner: Optional[tuple] = None,
    ) -> None:
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be non-negative, got {num_nodes}")
        if edge_feature_dim < 0:
            raise ValueError(
                f"edge_feature_dim must be non-negative, got {edge_feature_dim}"
            )
        if propagation not in ("blocked", "event"):
            raise ValueError(
                f"unknown propagation mode {propagation!r}; use 'blocked' or 'event'"
            )
        if owner is not None:
            shard_index, num_shards = (int(owner[0]), int(owner[1]))
            if num_shards <= 0:
                raise ValueError(f"num_shards must be positive, got {num_shards}")
            if not 0 <= shard_index < num_shards:
                raise ValueError(
                    f"shard_index must be in [0, {num_shards}), got {shard_index}"
                )
            owner = (shard_index, num_shards)
        stores, structural_params, static_tables, seen_mask = partition_processes(
            processes
        )
        self.k = k
        self.num_nodes = int(num_nodes)
        self.edge_feature_dim = int(edge_feature_dim)
        self.propagation = propagation
        self.owner = owner
        owner_mask = None
        if owner is not None and num_nodes:
            owner_mask = (
                endpoint_shard(np.arange(num_nodes, dtype=np.int64), owner[1])
                == owner[0]
            )
        self._state = ReplayState(k, stores, owner=owner, owner_mask=owner_mask)
        self._structural_params = structural_params
        self._static_tables = static_tables
        self._seen_mask = seen_mask
        self._edges_ingested = 0
        self._last_time = -np.inf
        self._closed = False
        self._progress = threading.Condition()
        self._monitor = None
        self._journal = None

    # ------------------------------------------------------------------
    @property
    def stores(self) -> Dict[str, OnlineFeatureStore]:
        return self._state.stores

    @property
    def edges_ingested(self) -> int:
        return self._edges_ingested

    @property
    def last_time(self) -> float:
        """Timestamp of the newest ingested edge (-inf before any)."""
        return self._last_time

    @property
    def is_closed(self) -> bool:
        return self._closed

    @property
    def feature_names(self) -> list:
        """Names of the feature spaces this store can materialise."""
        names = set(self._state.stores) | set(self._static_tables)
        if self._structural_params:
            names.add("structural")
        return sorted(names)

    def feature_dim(self, name: str) -> int:
        """Width of the vectors this store materialises for ``name``."""
        if name in self._state.stores:
            return int(self._state.stores[name].dim)
        if name in self._static_tables:
            return int(self._static_tables[name].shape[1])
        if name == "structural" and self._structural_params:
            return int(self._structural_params["dim"])
        raise KeyError(f"no feature process {name!r} in this store")

    def owns(self, nodes):
        """Ownership test under this store's fleet shard spec.

        Scalar in → bool out; array in → boolean array.  Without an
        ``owner`` spec everything is owned.
        """
        if self.owner is None:
            if np.isscalar(nodes) or np.ndim(nodes) == 0:
                return True
            return np.ones(len(np.atleast_1d(nodes)), dtype=bool)
        if np.isscalar(nodes) or np.ndim(nodes) == 0:
            return self._state.owns(int(nodes))
        return self._state._owns_array(np.asarray(nodes, dtype=np.int64))

    @property
    def monitor(self):
        return self._monitor

    def attach_monitor(self, monitor) -> None:
        """Feed every subsequently ingested batch to a drift monitor.

        ``monitor`` is anything with the
        :meth:`repro.adapt.DriftMonitor.observe_edges` signature; it is
        called under the store's lock, after the replay state has
        advanced, with the exact arrays of the batch.  Keep the observer
        O(batch) cheap — it sits on the ingest hot path (the adaptation
        benchmark gates this overhead at < 10% of ingest throughput).
        """
        with self._progress:
            self._monitor = monitor

    def attach_journal(self, journal) -> None:
        """Tee every subsequently ingested batch into a durable event log.

        ``journal`` is a callable ``(src, dst, times, features, weights)``
        (typically :meth:`repro.serving.persistence.PersistenceManager.append`);
        it runs under the store's lock *after* the replay state has
        advanced, with the validated batch arrays (weights already
        defaulted), so the journal's event count tracks
        :attr:`edges_ingested` exactly.  A journal exception propagates to
        the ingest caller — state has advanced but the batch is not
        durable, which the journal's durable watermark records honestly.
        Pass ``None`` to detach.
        """
        with self._progress:
            self._journal = journal

    # ------------------------------------------------------------------
    def ingest(self, edges: CTDG) -> int:
        """Apply one micro-batch of edges; returns the count ingested."""
        return self.ingest_arrays(
            edges.src, edges.dst, edges.times, edges.edge_features, edges.weights
        )

    def ingest_arrays(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        times: np.ndarray,
        features: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
    ) -> int:
        """Column-array variant of :meth:`ingest` (views are fine).

        Edges must continue the stream: times non-decreasing within the
        batch and not before the newest edge already ingested.  A batch
        boundary may land anywhere — including between edges sharing one
        timestamp — without affecting the materialised contexts.
        """
        src = np.asarray(src)
        dst = np.asarray(dst)
        times = np.asarray(times)
        count = len(times)
        if not (len(src) == len(dst) == count):
            raise ValueError("src, dst, times must have equal length")
        if count and np.any(np.diff(times) < 0):
            raise ValueError("edge times must be non-decreasing within a batch")
        if features is None:
            if self.edge_feature_dim:
                raise ValueError(
                    f"store expects {self.edge_feature_dim}-dim edge features"
                )
        elif len(features) != count or features.shape[1] != self.edge_feature_dim:
            raise ValueError(
                f"features must be ({count}, {self.edge_feature_dim}), "
                f"got {features.shape}"
            )
        if weights is None:
            weights = np.ones(count)
        with obs.span("store.ingest", batch=count), self._progress:
            if self._closed:
                raise RuntimeError("store is closed to further ingestion")
            if count and float(times[0]) < self._last_time:
                raise ValueError(
                    f"out-of-order ingest: batch starts at t={float(times[0])} "
                    f"but the store has already seen t={self._last_time}"
                )
            base = self._edges_ingested
            apply_edge = self._state.apply_edge

            def apply_range(lo: int, hi: int) -> None:
                for offset in range(lo, hi):
                    feature = features[offset] if features is not None else None
                    apply_edge(
                        base + offset,
                        int(src[offset]),
                        int(dst[offset]),
                        float(times[offset]),
                        feature,
                        float(weights[offset]),
                    )

            if self.propagation == "blocked" and count > 1:
                indices = np.arange(base, base + count, dtype=np.int64)
                bounds = plan_update_blocks(src, dst)
                for lo, hi in zip(bounds[:-1], bounds[1:]):
                    if hi - lo < _MIN_VECTOR_RUN:
                        # Tiny runs (dense conflict regions): per-event is
                        # cheaper than the vectorised dispatch.
                        apply_range(lo, hi)
                        continue
                    self._state.apply_edge_block(
                        indices[lo:hi],
                        src[lo:hi],
                        dst[lo:hi],
                        times[lo:hi],
                        features[lo:hi] if features is not None else None,
                        weights[lo:hi],
                    )
            else:
                apply_range(0, count)
            self._edges_ingested = base + count
            if count:
                self._last_time = float(times[-1])
            if self._monitor is not None and count:
                self._monitor.observe_edges(src, dst, times, features, weights)
            if self._journal is not None and count:
                self._journal(src, dst, times, features, weights)
            self._progress.notify_all()
            ingested = self._edges_ingested
        obs.inc("store.ingest.events", count)
        obs.set_gauge("store.edges_ingested", ingested)
        return count

    def close(self) -> None:
        """Declare the stream finished; wakes any waiting scorers."""
        with self._progress:
            self._closed = True
            self._progress.notify_all()

    def wait_for_edges(self, count: int, timeout: Optional[float] = None) -> bool:
        """Block until ≥ ``count`` edges are ingested (or the store closes).

        Returns True when the watermark was reached — the edge-count
        watermark (not a time watermark) is what makes queries tied with
        in-flight edges exact: the interleave's ``cuts[q]`` says precisely
        how many edges must precede query ``q``.
        """
        with self._progress:
            reached = self._progress.wait_for(
                lambda: self._edges_ingested >= count or self._closed,
                timeout=timeout,
            )
            return bool(reached and self._edges_ingested >= count)

    # ------------------------------------------------------------------
    # Persistence (serving snapshots, repro.serving.persistence)
    # ------------------------------------------------------------------
    def export_runtime_state(self) -> tuple:
        """Everything a warm restart needs, as ``(arrays, scalars)``.

        ``arrays`` maps namespaced keys (``buffer::*``, ``degrees::*``,
        ``stores::<name>::*``) to the live replay state — the k-recent
        neighbour tails, the Eq. 2 degree counts, and each online store's
        evolving tables.  The dense blocks are views of live state (no
        copy), so callers must finish persisting them before the next
        ingest.  ``scalars`` carries the JSON-safe counters
        (``edges_ingested``, ``last_time``, schema describers) that
        :meth:`restore_runtime_state` validates against.  Taken atomically
        under the store lock, so the export is a consistent cut between
        two micro-batches.
        """
        with self._progress:
            arrays: Dict[str, np.ndarray] = {}
            for key, value in self._state.buffer.export_arrays().items():
                arrays[f"buffer::{key}"] = value
            deg_nodes, deg_counts = self._state.degrees.export_arrays()
            arrays["degrees::nodes"] = deg_nodes
            arrays["degrees::counts"] = deg_counts
            for name in self._state.store_names:
                state = self._state.stores[name].export_runtime_state()
                for key, value in state.items():
                    arrays[f"stores::{name}::{key}"] = value
            scalars = {
                "edges_ingested": int(self._edges_ingested),
                "last_time": (
                    None if np.isneginf(self._last_time) else float(self._last_time)
                ),
                "closed": bool(self._closed),
                "k": int(self.k),
                "num_nodes": int(self.num_nodes),
                "edge_feature_dim": int(self.edge_feature_dim),
                "store_names": list(self._state.store_names),
                "owner": list(self.owner) if self.owner is not None else None,
            }
            return arrays, scalars

    def restore_runtime_state(self, arrays: Dict[str, np.ndarray], scalars: dict):
        """Inverse of :meth:`export_runtime_state`, applied to a fresh store.

        The store must have been built from the *same* fitted processes
        (the snapshot holds replay state, not fitted tables) and must not
        have ingested anything yet.  Schema mismatches — different ``k``,
        node space, edge-feature width, or feature-store roster — raise
        instead of resuming silently wrong.
        """
        for field in ("k", "num_nodes", "edge_feature_dim"):
            if int(scalars[field]) != int(getattr(self, field)):
                raise ValueError(
                    f"snapshot {field}={scalars[field]} does not match this "
                    f"store's {field}={getattr(self, field)}"
                )
        if list(scalars["store_names"]) != list(self._state.store_names):
            raise ValueError(
                f"snapshot feature stores {scalars['store_names']} do not "
                f"match this store's {self._state.store_names}"
            )
        snap_owner = scalars.get("owner")
        snap_owner = tuple(snap_owner) if snap_owner is not None else None
        if snap_owner != self.owner:
            raise ValueError(
                f"snapshot owner={snap_owner} does not match this store's "
                f"owner={self.owner}; a shard snapshot only resumes into a "
                f"store with the same (shard_index, num_shards)"
            )
        with self._progress:
            if self._edges_ingested:
                raise RuntimeError(
                    "restore_runtime_state needs a fresh store; this one has "
                    f"already ingested {self._edges_ingested} edges"
                )
            self._state.buffer.restore_arrays(
                {
                    key[len("buffer::"):]: value
                    for key, value in arrays.items()
                    if key.startswith("buffer::")
                }
            )
            self._state.degrees.restore_arrays(
                arrays["degrees::nodes"], arrays["degrees::counts"]
            )
            for name in self._state.store_names:
                prefix = f"stores::{name}::"
                self._state.stores[name].restore_runtime_state(
                    {
                        key[len(prefix):]: value
                        for key, value in arrays.items()
                        if key.startswith(prefix)
                    }
                )
            self._edges_ingested = int(scalars["edges_ingested"])
            self._last_time = (
                -np.inf
                if scalars["last_time"] is None
                else float(scalars["last_time"])
            )
            self._closed = bool(scalars.get("closed", False))
            self._progress.notify_all()
        return self

    # ------------------------------------------------------------------
    def write_queries(
        self,
        out: _QueryOutputs,
        rows: Iterable[int],
        nodes: np.ndarray,
        times: np.ndarray,
    ) -> None:
        """Materialise query rows into a caller-owned output block.

        The low-level primitive behind :meth:`materialise`; used directly
        when assembling one large bundle across many micro-batches
        (:func:`incremental_context_bundle`).
        """
        with self._progress:
            write_query = self._state.write_query
            for row, node, time in zip(rows, nodes, times):
                write_query(out, int(row), int(node), float(time), self._seen_mask)

    def materialise(
        self,
        nodes: np.ndarray,
        times: Union[np.ndarray, float],
    ) -> ContextBundle:
        """Contexts for ``nodes`` at ``times`` against the current state.

        ``times`` may be a scalar (all queries at one instant) or a
        non-decreasing array.  The caller is responsible for the §III
        prefix contract: the ingested prefix must be exactly the edges
        with t(l) ≤ each query's time — then the output equals the offline
        replay bit for bit.  Ingesting beyond a query's time would leak
        future edges into its context, exactly as it would offline.
        """
        nodes = np.asarray(nodes, dtype=np.int64).ravel()
        times = np.broadcast_to(
            np.asarray(times, dtype=np.float64), nodes.shape
        ).copy()
        queries = QuerySet(nodes, times)
        out = _QueryOutputs(len(nodes), self.k, self.edge_feature_dim, self.stores)
        self.write_queries(out, range(len(nodes)), nodes, times)
        return self.bundle_from(out, queries)

    def bundle_from(
        self,
        out: _QueryOutputs,
        queries: QuerySet,
        ctdg: Optional[CTDG] = None,
    ) -> ContextBundle:
        """Wrap a filled output block as a :class:`ContextBundle`."""
        if ctdg is None:
            empty = np.zeros(0, dtype=np.int64)
            ctdg = CTDG(empty, empty, np.zeros(0), num_nodes=self.num_nodes)
        return ContextBundle(
            ctdg=ctdg,
            queries=queries,
            k=self.k,
            neighbor_nodes=out.neighbor_nodes,
            neighbor_times=out.neighbor_times,
            neighbor_degrees=out.neighbor_degrees,
            edge_features=out.edge_features,
            edge_weights=out.edge_weights,
            mask=out.mask,
            target_degrees=out.target_degrees,
            target_last_times=out.target_last_times,
            target_seen=out.target_seen,
            target_features=out.target_features,
            neighbor_features=out.neighbor_features,
            structural_params=dict(self._structural_params),
            static_tables=dict(self._static_tables),
        )


def incremental_context_bundle(
    ctdg: CTDG,
    queries: QuerySet,
    k: int,
    processes: Sequence[FeatureProcess] = (),
    ingest_batch: Optional[int] = None,
    propagation: str = "blocked",
) -> ContextBundle:
    """Materialise a full bundle through the *incremental* path.

    Replays the edge/query interleave of ``ctdg``/``queries`` through a
    fresh :class:`IncrementalContextStore`, ingesting edges in micro-batches
    of at most ``ingest_batch`` (None = maximal runs) and answering each
    query block against the state at that point.  The result must be — and
    is tested to be — bit-for-bit identical to
    :func:`repro.models.context.build_context_bundle` with any engine;
    this function exists for exactly that equivalence check (tests, the
    serving benchmark's ``identical`` bit) and as executable documentation
    of the serving replay protocol.
    """
    store = IncrementalContextStore(
        processes, k, ctdg.num_nodes, ctdg.edge_feature_dim, propagation=propagation
    )
    out = _QueryOutputs(len(queries), k, ctdg.edge_feature_dim, store.stores)
    has_features = ctdg.edge_features is not None
    for kind, lo, hi in iter_interleave(
        ctdg.times, queries.times, max_block=ingest_batch
    ):
        if kind == "edges":
            store.ingest_arrays(
                ctdg.src[lo:hi],
                ctdg.dst[lo:hi],
                ctdg.times[lo:hi],
                ctdg.edge_features[lo:hi] if has_features else None,
                ctdg.weights[lo:hi],
            )
        else:
            store.write_queries(
                out, range(lo, hi), queries.nodes[lo:hi], queries.times[lo:hi]
            )
    return store.bundle_from(out, queries, ctdg=ctdg)
