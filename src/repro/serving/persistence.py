"""Zero-copy persistence for the serving layer: segment log, snapshots,
manifest — and O(1) warm restart.

A serving node that restarts without this module must re-replay its whole
ingested prefix, so recovery time grows linearly with stream length.  This
module makes restart time independent of the stream:

* **Segment log** — :class:`SegmentWriter`/:class:`SegmentReader` over an
  append-only directory of fixed-dtype binary segments (one packed record
  per temporal edge, ``.npy``-style memory-mappable layout).  Each segment
  pairs a data file with a fsynced JSON footer recording the durable event
  count and a CRC-32 of exactly those bytes; the footer — written with
  temp-file + ``os.replace`` — is the commit point.  Bytes beyond the
  footer count are a torn tail from a crash mid-append and are truncated
  on reopen; bytes *missing* against the footer count are real corruption
  and fail loudly (:class:`SegmentCorruption`).
* **Snapshots** — :func:`write_snapshot` persists one
  :meth:`IncrementalContextStore.export_runtime_state` cut as one ``.npy``
  file per array plus a ``snapshot.json`` index (sizes + CRC-32 + the
  store's scalars).  The dense working tables are contiguous, so a
  snapshot is a straight ``np.save`` per table; :func:`load_snapshot`
  memory-maps the large ones copy-on-write, so a warm restart touches only
  the pages the resumed replay actually dirties.  Snapshot directories are
  written to a temp sibling and renamed into place — a torn snapshot is
  detected (missing/short/CRC-mismatched files) and skipped, never loaded
  silently wrong.
* **Manifest** — ``manifest.json`` at the persistence root binds the
  artifact (path + dtype/backend provenance), the store schema, the
  segment list, and the snapshot chain.  It is rewritten atomically, so a
  reader sees the previous consistent binding or the new one, never a
  torn state.

:class:`PersistenceManager` wires the three together around one live
:class:`~repro.serving.store.IncrementalContextStore`: ingest tees into
the log through :meth:`IncrementalContextStore.attach_journal`, snapshots
fire every ``snapshot_every`` ingested edges, and
:meth:`PersistenceManager.resume` rebuilds the pair — load artifact, mmap
the newest valid snapshot, tail-replay only the unsnapshotted suffix —
bit-for-bit equal to a cold replay of the full log
(``tests/serving/test_persistence.py``, gated in CI by
``bench_restart.py``).
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import zlib
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.serving.store import IncrementalContextStore
from repro.utils.logging import get_logger

logger = get_logger("serving")

SEGMENT_FORMAT = "splash-segment"
SNAPSHOT_FORMAT = "splash-snapshot"
MANIFEST_FORMAT = "splash-persistence"
MANIFEST_VERSION = 1
MANIFEST_FILE = "manifest.json"
SEGMENTS_DIR = "segments"
SNAPSHOTS_DIR = "snapshots"
DEFAULT_SEGMENT_EVENTS = 1 << 18
DEFAULT_SNAPSHOT_EVERY = 100_000
# Arrays at least this large load memory-mapped (copy-on-write) instead of
# being read eagerly: the snapshot's dense tables resume zero-copy.
MMAP_THRESHOLD_BYTES = 1 << 20


class SegmentCorruption(RuntimeError):
    """A segment's bytes contradict its committed footer."""


class SnapshotCorruption(RuntimeError):
    """A snapshot directory is torn, truncated, or checksum-mismatched."""


def event_dtype(edge_feature_dim: int) -> np.dtype:
    """The fixed per-edge record layout of a segment file."""
    return np.dtype(
        [
            ("src", "<i8"),
            ("dst", "<i8"),
            ("time", "<f8"),
            ("weight", "<f8"),
            ("feat", "<f8", (int(edge_feature_dim),)),
        ]
    )


def _fsync_file(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: str) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # platforms without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_json(path: str, payload: dict) -> None:
    """Durably replace ``path`` with ``payload``: temp file, fsync, rename."""
    directory = os.path.dirname(os.path.abspath(path))
    tmp_path = os.path.join(
        directory, f".{os.path.basename(path)}.tmp-{os.getpid()}"
    )
    try:
        with open(tmp_path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    _fsync_dir(directory)


# ----------------------------------------------------------------------
# Segment log
# ----------------------------------------------------------------------
def _segment_basename(start: int) -> str:
    return f"seg-{start:012d}"


class SegmentWriter:
    """Appends fixed-dtype edge records to one segment; footer is the commit.

    ``append`` buffers into the OS; :meth:`flush` fsyncs the data file and
    then atomically rewrites the footer (count + running CRC-32), making
    everything appended so far durable.  Reopening an existing segment
    truncates any un-committed tail bytes back to the footer count — the
    crash-mid-append recovery path — and resumes the CRC from the footer.
    """

    def __init__(self, directory: str, start: int, edge_feature_dim: int) -> None:
        self.start = int(start)
        self.edge_feature_dim = int(edge_feature_dim)
        self.dtype = event_dtype(edge_feature_dim)
        base = os.path.join(directory, _segment_basename(start))
        self.data_path = base + ".seg"
        self.footer_path = base + ".json"
        count, crc = 0, 0
        if os.path.exists(self.footer_path):
            footer = read_segment_footer(self.footer_path)
            if footer["start"] != self.start:
                raise SegmentCorruption(
                    f"footer start {footer['start']} does not match segment "
                    f"file {self.data_path!r}"
                )
            count, crc = footer["count"], footer["crc32"]
            need = count * self.dtype.itemsize
            have = os.path.getsize(self.data_path)
            if have < need:
                raise SegmentCorruption(
                    f"segment {self.data_path!r} holds {have} bytes but its "
                    f"footer committed {need}; refusing to resume from a "
                    "truncated segment"
                )
        need = count * self.dtype.itemsize
        if os.path.exists(self.data_path) and os.path.getsize(self.data_path) > need:
            # Torn tail from a crash between append and flush: the records
            # past the footer were never committed, so drop them.
            logger.warning(
                "truncating %d un-committed tail bytes in %s",
                os.path.getsize(self.data_path) - need,
                self.data_path,
            )
            with open(self.data_path, "r+b") as handle:
                handle.truncate(need)
        self._handle = open(self.data_path, "ab")
        self._count = count
        self._durable = count
        self._crc = crc

    @property
    def count(self) -> int:
        """Records appended (durable + not-yet-flushed)."""
        return self._count

    @property
    def durable_count(self) -> int:
        return self._durable

    def append(self, src, dst, times, features, weights) -> int:
        n = len(src)
        records = np.empty(n, dtype=self.dtype)
        records["src"] = src
        records["dst"] = dst
        records["time"] = times
        records["weight"] = weights
        if self.edge_feature_dim:
            records["feat"] = features
        payload = records.tobytes()
        self._handle.write(payload)
        self._crc = zlib.crc32(payload, self._crc)
        self._count += n
        return n

    def flush(self) -> None:
        """Make every appended record durable (fsync data, commit footer)."""
        if self._durable == self._count and os.path.exists(self.footer_path):
            return
        with obs.span("persist.fsync", segment=self.start, events=self._count):
            self._handle.flush()
            os.fsync(self._handle.fileno())
            atomic_write_json(
                self.footer_path,
                {
                    "format": SEGMENT_FORMAT,
                    "start": self.start,
                    "count": self._count,
                    "crc32": self._crc,
                    "edge_feature_dim": self.edge_feature_dim,
                    "record_bytes": self.dtype.itemsize,
                },
            )
            self._durable = self._count

    def close(self) -> None:
        self.flush()
        self._handle.close()


def read_segment_footer(path: str) -> dict:
    try:
        with open(path) as handle:
            footer = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SegmentCorruption(f"unreadable segment footer {path!r}: {error}")
    if footer.get("format") != SEGMENT_FORMAT:
        raise SegmentCorruption(
            f"not a segment footer: {path!r} (format={footer.get('format')!r})"
        )
    return {
        "start": int(footer["start"]),
        "count": int(footer["count"]),
        "crc32": int(footer["crc32"]),
        "edge_feature_dim": int(footer["edge_feature_dim"]),
        "record_bytes": int(footer["record_bytes"]),
    }


class SegmentReader:
    """Memory-mapped read access to one committed segment.

    Only the footer-committed prefix is visible; torn tail bytes past it
    are ignored.  ``verify=True`` additionally checks the committed bytes
    against the footer's CRC-32 (an O(segment) scan, used at resume).
    """

    def __init__(self, directory: str, start: int, *, verify: bool = False) -> None:
        base = os.path.join(directory, _segment_basename(start))
        self.data_path = base + ".seg"
        footer = read_segment_footer(base + ".json")
        if footer["start"] != int(start):
            raise SegmentCorruption(
                f"footer start {footer['start']} does not match segment "
                f"file {self.data_path!r}"
            )
        self.start = footer["start"]
        self.count = footer["count"]
        self.edge_feature_dim = footer["edge_feature_dim"]
        self.dtype = event_dtype(self.edge_feature_dim)
        need = self.count * self.dtype.itemsize
        have = os.path.getsize(self.data_path) if os.path.exists(self.data_path) else -1
        if have < need:
            raise SegmentCorruption(
                f"segment {self.data_path!r} holds {max(have, 0)} bytes but "
                f"its footer committed {need}; the committed tail is missing"
            )
        if self.count:
            self._records = np.memmap(
                self.data_path, dtype=self.dtype, mode="r", shape=(self.count,)
            )
        else:
            self._records = np.empty(0, dtype=self.dtype)
        if verify and self.count:
            crc = zlib.crc32(self._records.tobytes())
            if crc != footer["crc32"]:
                raise SegmentCorruption(
                    f"segment {self.data_path!r} fails its checksum "
                    f"(footer crc32={footer['crc32']}, data crc32={crc})"
                )

    def read(self, lo: int, hi: int) -> Tuple[np.ndarray, ...]:
        """Columns for records ``[lo, hi)`` (segment-relative indices)."""
        if not 0 <= lo <= hi <= self.count:
            raise IndexError(
                f"range [{lo}, {hi}) outside segment of {self.count} records"
            )
        block = self._records[lo:hi]
        features = (
            np.array(block["feat"], dtype=np.float64)
            if self.edge_feature_dim
            else None
        )
        return (
            np.array(block["src"], dtype=np.int64),
            np.array(block["dst"], dtype=np.int64),
            np.array(block["time"], dtype=np.float64),
            features,
            np.array(block["weight"], dtype=np.float64),
        )


class EventLog:
    """Append-only CTDG event log over a directory of segments.

    Recovery at open: segments are chained by their start offsets (each
    must begin exactly where its predecessor's footer ends); a sealed
    segment with a missing or contradicted footer fails loudly, while the
    *tail* segment may carry un-committed bytes (truncated) or no footer
    at all (zero durable events — a crash before the first flush).
    """

    def __init__(
        self,
        root: str,
        edge_feature_dim: int,
        *,
        segment_events: int = DEFAULT_SEGMENT_EVENTS,
        verify: bool = False,
    ) -> None:
        if segment_events <= 0:
            raise ValueError(f"segment_events must be positive, got {segment_events}")
        self.root = root
        self.edge_feature_dim = int(edge_feature_dim)
        self.segment_events = int(segment_events)
        self._verify = verify
        os.makedirs(root, exist_ok=True)
        starts = sorted(
            int(name[len("seg-"):-len(".seg")])
            for name in os.listdir(root)
            if name.startswith("seg-") and name.endswith(".seg")
        )
        expected = 0
        for position, start in enumerate(starts):
            if start != expected:
                raise SegmentCorruption(
                    f"segment chain broken in {root!r}: expected a segment "
                    f"starting at {expected}, found {start}"
                )
            if position < len(starts) - 1:
                footer = read_segment_footer(
                    os.path.join(root, _segment_basename(start) + ".json")
                )
                expected = start + footer["count"]
            # The tail segment's durable count is resolved by its writer.
        tail_start = starts[-1] if starts else 0
        if starts and not os.path.exists(
            os.path.join(root, _segment_basename(tail_start) + ".json")
        ):
            # Crash before the tail's first flush: nothing in it is
            # durable.  Truncate it to empty and commit that explicitly.
            logger.warning(
                "tail segment at %d has no footer; recovering it as empty",
                tail_start,
            )
            with open(
                os.path.join(root, _segment_basename(tail_start) + ".seg"), "r+b"
            ) as handle:
                handle.truncate(0)
            SegmentWriter(root, tail_start, edge_feature_dim).close()
        self._writer = SegmentWriter(root, tail_start, edge_feature_dim)
        self._sealed: List[Tuple[int, int]] = []  # (start, count) of sealed segs
        for start in starts[:-1]:
            footer = read_segment_footer(
                os.path.join(root, _segment_basename(start) + ".json")
            )
            self._sealed.append((start, footer["count"]))

    # ------------------------------------------------------------------
    @property
    def appended_events(self) -> int:
        """Events written (durable or not); equals the ingested count."""
        return self._writer.start + self._writer.count

    @property
    def durable_events(self) -> int:
        """Events safe against a crash (committed by a segment footer)."""
        return self._writer.start + self._writer.durable_count

    def append(self, src, dst, times, features, weights) -> int:
        """Append one batch, rolling to new segments at the size bound."""
        total = len(src)
        lo = 0
        with obs.span("persist.append", events=total):
            while lo < total:
                room = self.segment_events - self._writer.count
                if room <= 0:
                    self._roll()
                    continue
                hi = min(total, lo + room)
                self._writer.append(
                    src[lo:hi],
                    dst[lo:hi],
                    times[lo:hi],
                    None if features is None else features[lo:hi],
                    weights[lo:hi],
                )
                lo = hi
        appended = self.appended_events
        obs.set_gauge("persist.log.appended_events", appended)
        obs.set_gauge("persist.log.bytes", appended * self._writer.dtype.itemsize)
        return total

    def _update_durable_gauge(self) -> None:
        obs.set_gauge("persist.log.durable_events", self.durable_events)

    def _roll(self) -> None:
        self._writer.close()
        self._sealed.append((self._writer.start, self._writer.count))
        self._writer = SegmentWriter(
            self.root, self.appended_events, self.edge_feature_dim
        )

    def flush(self) -> None:
        self._writer.flush()
        self._update_durable_gauge()

    def close(self) -> None:
        self._writer.close()
        self._update_durable_gauge()

    def segment_index(self) -> List[dict]:
        """Manifest-friendly listing: file, start, durable count per segment."""
        entries = [
            {
                "file": _segment_basename(start) + ".seg",
                "start": start,
                "count": count,
            }
            for start, count in self._sealed
        ]
        entries.append(
            {
                "file": _segment_basename(self._writer.start) + ".seg",
                "start": self._writer.start,
                "count": self._writer.durable_count,
            }
        )
        return entries

    def read_range(
        self, lo: int, hi: Optional[int] = None
    ) -> Iterator[Tuple[np.ndarray, ...]]:
        """Yield column blocks covering global events ``[lo, hi)``.

        ``hi`` defaults to the durable watermark; reading beyond it raises
        (those records are not committed).  The flat per-segment layout
        makes this a memmap slice per overlapping segment — the tail
        replay of a warm restart.
        """
        hi = self.durable_events if hi is None else hi
        if not 0 <= lo <= hi <= self.durable_events:
            raise IndexError(
                f"range [{lo}, {hi}) outside durable log of "
                f"{self.durable_events} events"
            )
        self.flush()
        spans = self._sealed + [(self._writer.start, self._writer.durable_count)]
        for start, count in spans:
            s_lo = max(lo, start)
            s_hi = min(hi, start + count)
            if s_lo >= s_hi:
                continue
            reader = SegmentReader(self.root, start, verify=self._verify)
            yield reader.read(s_lo - start, s_hi - start)


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
def write_snapshot(
    snapshots_root: str, arrays: Dict[str, np.ndarray], scalars: dict
) -> str:
    """Persist one store cut durably; returns the snapshot directory name.

    Arrays are written one ``.npy`` file each (so large tables can be
    memory-mapped back), then ``snapshot.json`` (sizes + CRC-32 + scalars)
    inside a temp sibling directory that is fsynced and renamed into
    place: a crash at any point leaves either no snapshot or a complete
    one, and :func:`load_snapshot` detects the difference.
    """
    os.makedirs(snapshots_root, exist_ok=True)
    name = f"snap-{int(scalars['offset']):012d}"
    final = os.path.join(snapshots_root, name)
    attempt = 0
    while os.path.exists(final):
        attempt += 1
        final = os.path.join(snapshots_root, f"{name}-{attempt}")
    tmp = os.path.join(
        snapshots_root, f".{os.path.basename(final)}.tmp-{os.getpid()}"
    )
    if os.path.exists(tmp):
        shutil.rmtree(tmp)
    os.makedirs(tmp)
    try:
        index = {}
        for position, key in enumerate(sorted(arrays)):
            file_name = f"a{position:05d}.npy"
            file_path = os.path.join(tmp, file_name)
            np.save(file_path, np.ascontiguousarray(arrays[key]))
            with open(file_path, "rb") as handle:
                payload = handle.read()
            index[key] = {
                "file": file_name,
                "bytes": len(payload),
                "crc32": zlib.crc32(payload),
            }
            _fsync_file(file_path)
        atomic_write_json(
            os.path.join(tmp, "snapshot.json"),
            {
                "format": SNAPSHOT_FORMAT,
                "version": 1,
                "scalars": dict(scalars),
                "arrays": index,
            },
        )
        os.replace(tmp, final)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    _fsync_dir(snapshots_root)
    return os.path.basename(final)


def load_snapshot(
    path: str, *, verify: bool = True, mmap_threshold: int = MMAP_THRESHOLD_BYTES
) -> Tuple[Dict[str, np.ndarray], dict]:
    """Load a snapshot directory, failing loudly on any tear.

    Every indexed file must exist with its recorded size (and CRC-32 when
    ``verify``); arrays at least ``mmap_threshold`` bytes come back
    memory-mapped copy-on-write — the restored store mutates them in
    memory without touching the snapshot on disk.
    """
    index_path = os.path.join(path, "snapshot.json")
    if not os.path.exists(index_path):
        raise SnapshotCorruption(
            f"{path!r} has no snapshot.json — torn or incomplete snapshot"
        )
    try:
        with open(index_path) as handle:
            index = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SnapshotCorruption(f"unreadable snapshot index {index_path!r}: {error}")
    if index.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotCorruption(
            f"not a snapshot: {path!r} (format={index.get('format')!r})"
        )
    arrays: Dict[str, np.ndarray] = {}
    for key, entry in index["arrays"].items():
        file_path = os.path.join(path, entry["file"])
        if not os.path.exists(file_path):
            raise SnapshotCorruption(
                f"snapshot {path!r} is missing array file {entry['file']!r}"
            )
        size = os.path.getsize(file_path)
        if size != int(entry["bytes"]):
            raise SnapshotCorruption(
                f"snapshot array {file_path!r} holds {size} bytes, index "
                f"records {entry['bytes']} — torn snapshot"
            )
        if verify:
            with open(file_path, "rb") as handle:
                crc = zlib.crc32(handle.read())
            if crc != int(entry["crc32"]):
                raise SnapshotCorruption(
                    f"snapshot array {file_path!r} fails its checksum"
                )
        if size >= mmap_threshold:
            arrays[key] = np.load(file_path, mmap_mode="c")
        else:
            arrays[key] = np.load(file_path)
    return arrays, index["scalars"]


# ----------------------------------------------------------------------
# Manifest + manager
# ----------------------------------------------------------------------
class PersistenceManager:
    """Binds one live store to a persistence root (log + snapshots + manifest).

    Create one per serving process with :meth:`create` (fresh root, saves
    the artifact, attaches the ingest journal) or :meth:`resume` (rebuilds
    artifact + store from the newest valid snapshot plus a tail replay).
    ``snapshot_every`` bounds the tail a restart must replay; the
    adaptation loop re-binds a promoted artifact + warmed store through
    :meth:`rebind` so checkpoints follow hot swaps.
    """

    def __init__(
        self,
        root: str,
        store: IncrementalContextStore,
        log: EventLog,
        *,
        artifact_info: dict,
        base_offset: int = 0,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        keep_snapshots: int = 2,
        snapshots: Optional[List[str]] = None,
        last_snapshot_position: int = 0,
    ) -> None:
        if snapshot_every <= 0:
            raise ValueError(f"snapshot_every must be positive, got {snapshot_every}")
        if keep_snapshots < 1:
            raise ValueError(f"keep_snapshots must be >= 1, got {keep_snapshots}")
        self.root = root
        self.store = store
        self.snapshot_every = int(snapshot_every)
        self.keep_snapshots = int(keep_snapshots)
        self._log = log
        self._artifact_info = dict(artifact_info)
        self._base_offset = int(base_offset)
        self._snapshots = list(snapshots or [])
        self._last_snapshot_position = int(last_snapshot_position)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        root: str,
        splash,
        store: IncrementalContextStore,
        *,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        segment_events: int = DEFAULT_SEGMENT_EVENTS,
        keep_snapshots: int = 2,
    ) -> "PersistenceManager":
        """Initialise a fresh persistence root around an un-started store."""
        if os.path.exists(os.path.join(root, MANIFEST_FILE)):
            raise FileExistsError(
                f"{root!r} already holds a persistence manifest; use resume()"
            )
        if store.edges_ingested:
            raise RuntimeError(
                "persistence must start on a fresh store (this one has "
                f"already ingested {store.edges_ingested} edges); resume() "
                "rebuilds mid-stream state instead"
            )
        os.makedirs(root, exist_ok=True)
        artifact_rel = "artifact-0001"
        splash.save(os.path.join(root, artifact_rel))
        log = EventLog(
            os.path.join(root, SEGMENTS_DIR),
            store.edge_feature_dim,
            segment_events=segment_events,
        )
        manager = cls(
            root,
            store,
            log,
            artifact_info=_artifact_info(artifact_rel, splash),
            snapshot_every=snapshot_every,
            keep_snapshots=keep_snapshots,
        )
        manager._write_manifest()
        store.attach_journal(manager.append)
        return manager

    @classmethod
    def resume(
        cls,
        root: str,
        *,
        verify: bool = True,
        snapshot_every: Optional[int] = None,
        keep_snapshots: int = 2,
    ):
        """Warm-restart a serving pair from ``root``.

        Returns ``(splash, store, manager)``: the manifest's artifact
        reloaded, a store restored from the newest *valid* snapshot (torn
        or checksum-failed snapshots are skipped with a warning, falling
        back to older ones and ultimately to a full log replay), and the
        tail of the durable log replayed on top — so the result is
        bit-for-bit the state a never-restarted store would hold over the
        same durable prefix.
        """
        with obs.span("persist.resume", root=root):
            return cls._resume(
                root,
                verify=verify,
                snapshot_every=snapshot_every,
                keep_snapshots=keep_snapshots,
            )

    @classmethod
    def _resume(
        cls,
        root: str,
        *,
        verify: bool,
        snapshot_every: Optional[int],
        keep_snapshots: int,
    ):
        from repro.pipeline.splash import Splash

        manifest_path = os.path.join(root, MANIFEST_FILE)
        if not os.path.exists(manifest_path):
            raise FileNotFoundError(f"no persistence manifest at {root!r}")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        if manifest.get("format") != MANIFEST_FORMAT:
            raise ValueError(
                f"not a persistence manifest: format={manifest.get('format')!r}"
            )
        if int(manifest.get("version", -1)) > MANIFEST_VERSION:
            raise ValueError(
                f"manifest version {manifest['version']} is newer than this "
                f"reader ({MANIFEST_VERSION})"
            )
        splash = Splash.load(os.path.join(root, manifest["artifact"]["path"]))
        store_cfg = manifest["store"]
        log = EventLog(
            os.path.join(root, SEGMENTS_DIR),
            store_cfg["edge_feature_dim"],
            segment_events=manifest.get("segment_events", DEFAULT_SEGMENT_EVENTS),
            verify=verify,
        )
        owner = store_cfg.get("owner")
        store = IncrementalContextStore(
            splash.processes,
            store_cfg["k"],
            store_cfg["num_nodes"],
            store_cfg["edge_feature_dim"],
            propagation=store_cfg.get("propagation", "blocked"),
            owner=tuple(owner) if owner is not None else None,
        )
        base_offset = int(manifest.get("base_offset", 0))
        usable: List[str] = []
        restored_position = 0
        for rel in manifest.get("snapshots", []):
            if os.path.isdir(os.path.join(root, rel)):
                usable.append(rel)
        for rel in reversed(usable):
            try:
                arrays, scalars = load_snapshot(
                    os.path.join(root, rel), verify=verify
                )
                offset = base_offset + int(scalars["edges_ingested"])
                if offset > log.durable_events:
                    logger.warning(
                        "snapshot %s is ahead of the durable log "
                        "(%d > %d); skipping it",
                        rel,
                        offset,
                        log.durable_events,
                    )
                    continue
                store.restore_runtime_state(arrays, scalars)
                restored_position = int(scalars["edges_ingested"])
                break
            except SnapshotCorruption as error:
                logger.warning("skipping unusable snapshot %s: %s", rel, error)
        for block in log.read_range(base_offset + store.edges_ingested):
            store.ingest_arrays(*block)
        manager = cls(
            root,
            store,
            log,
            artifact_info=dict(manifest["artifact"]),
            base_offset=base_offset,
            snapshot_every=(
                snapshot_every
                if snapshot_every is not None
                else manifest.get("snapshot_every", DEFAULT_SNAPSHOT_EVERY)
            ),
            keep_snapshots=keep_snapshots,
            snapshots=usable,
            last_snapshot_position=restored_position,
        )
        store.attach_journal(manager.append)
        return splash, store, manager

    # ------------------------------------------------------------------
    @property
    def durable_events(self) -> int:
        return self._log.durable_events

    @property
    def base_offset(self) -> int:
        """Global log offset of the bound store's event 0 (nonzero after
        an adaptation rebind: the promoted store was warmed on a window,
        not on the full log)."""
        return self._base_offset

    @property
    def snapshots(self) -> List[str]:
        return list(self._snapshots)

    @property
    def log(self) -> EventLog:
        return self._log

    def append(self, src, dst, times, features, weights) -> int:
        """The ingest tee (runs under the store lock; see attach_journal)."""
        return self._log.append(src, dst, times, features, weights)

    def flush(self) -> None:
        self._log.flush()

    def close(self) -> None:
        self._log.close()

    # ------------------------------------------------------------------
    def maybe_snapshot(self) -> Optional[str]:
        """Snapshot when ``snapshot_every`` edges have passed since the last."""
        due = (
            self.store.edges_ingested - self._last_snapshot_position
            >= self.snapshot_every
        )
        if not due:
            return None
        return self.snapshot()

    def snapshot(self) -> str:
        """Persist one consistent store cut and re-point the manifest at it."""
        with obs.span(
            "persist.snapshot", edges=self.store.edges_ingested
        ), self._lock:
            arrays, scalars = self.store.export_runtime_state()
            scalars["offset"] = self._base_offset + scalars["edges_ingested"]
            # Journal appends run under the same store lock as the state
            # advance, so everything the cut includes is already in the
            # log; flushing makes it durable before the snapshot that
            # depends on it exists.
            self._log.flush()
            rel = os.path.join(
                SNAPSHOTS_DIR,
                write_snapshot(
                    os.path.join(self.root, SNAPSHOTS_DIR), arrays, scalars
                ),
            )
            self._snapshots.append(rel)
            dropped = self._snapshots[: -self.keep_snapshots]
            self._snapshots = self._snapshots[-self.keep_snapshots:]
            self._last_snapshot_position = int(scalars["edges_ingested"])
            self._write_manifest()
            for old in dropped:
                shutil.rmtree(os.path.join(self.root, old), ignore_errors=True)
            obs.inc("persist.snapshots")
            logger.info(
                "snapshot %s at offset %d (durable log: %d events)",
                rel,
                scalars["offset"],
                self._log.durable_events,
            )
            return os.path.join(self.root, rel)

    def rebind(self, splash, store: IncrementalContextStore, note: str = "") -> None:
        """Re-point persistence at a promoted artifact + warmed store pair.

        Called by the adaptation loop after a hot swap: the new store was
        warmed on the re-fit window (whose edges are the durable log's
        most recent suffix), so its event 0 sits ``store.edges_ingested``
        events before the current end of the log — recorded as the new
        ``base_offset``.  The candidate artifact is saved under a fresh
        versioned directory, the manifest is atomically re-bound, and an
        immediate snapshot makes the swap restart-visible.  A crash
        anywhere before the manifest rewrite leaves the previous binding
        intact (resume then reconstructs the pre-swap pair at the current
        stream position — stale but consistent, exactly what the old pair
        would have served).
        """
        with self._lock:
            self.store.attach_journal(None)
            self._log.flush()
            number = 1 + _artifact_number(self._artifact_info["path"])
            artifact_rel = f"artifact-{number:04d}"
            splash.save(os.path.join(self.root, artifact_rel))
            old_snapshots = self._snapshots
            self._artifact_info = _artifact_info(artifact_rel, splash, note=note)
            self.store = store
            self._base_offset = self._log.durable_events - store.edges_ingested
            self._snapshots = []
            self._last_snapshot_position = store.edges_ingested
            store.attach_journal(self.append)
            self._write_manifest()
            for old in old_snapshots:
                shutil.rmtree(os.path.join(self.root, old), ignore_errors=True)
            self.snapshot()

    # ------------------------------------------------------------------
    def _write_manifest(self) -> None:
        payload = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "artifact": dict(self._artifact_info),
            "store": {
                "k": int(self.store.k),
                "num_nodes": int(self.store.num_nodes),
                "edge_feature_dim": int(self.store.edge_feature_dim),
                "propagation": self.store.propagation,
                # Fleet shard stores record their (shard_index, num_shards)
                # so resume rebuilds the same ownership partition — a
                # snapshot of one shard must never warm-start another.
                "owner": (
                    list(self.store.owner)
                    if self.store.owner is not None
                    else None
                ),
            },
            "base_offset": self._base_offset,
            "segment_events": self._log.segment_events,
            "snapshot_every": self.snapshot_every,
            "segments": [
                {**entry, "file": os.path.join(SEGMENTS_DIR, entry["file"])}
                for entry in self._log.segment_index()
            ],
            "snapshots": list(self._snapshots),
        }
        atomic_write_json(os.path.join(self.root, MANIFEST_FILE), payload)


def _artifact_number(artifact_rel: str) -> int:
    try:
        return int(artifact_rel.rsplit("-", 1)[-1])
    except ValueError:
        return 0


def _artifact_info(artifact_rel: str, splash, note: str = "") -> dict:
    from repro.serving.artifact import ARTIFACT_VERSION

    info = {
        "path": artifact_rel,
        "version": ARTIFACT_VERSION,
        "dtype": (
            np.dtype(splash.fit_dtype).name if splash.fit_dtype is not None else None
        ),
        "backend": splash.fit_backend,
    }
    if note:
        info["note"] = note
    return info
