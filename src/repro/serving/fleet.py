"""Horizontally sharded serving fleet: N worker processes, one front door.

The single-process :class:`~repro.serving.service.PredictionService` owns
the whole graph; its ingest cost is dominated by per-endpoint context
assembly — ``NeighborEntry`` construction, per-store snapshot copies, and
k-recent buffer inserts, all per-event Python.  The fleet partitions
exactly that work by endpoint hash
(:func:`repro.streams.replay.endpoint_shard`) across worker processes
while keeping results **bit-for-bit equal** to the single service:

* **Replicated global state, partitioned assembly.**  A query's context
  transitively depends on *global* state — its neighbours' exact degrees
  and feature snapshots at edge time, which depend on those nodes' full
  incident history and on the stream-wide unseen-node propagation chain
  (Eqs. 4-5).  True stream partitioning (each edge to one shard) therefore
  cannot be bit-exact.  Instead the router broadcasts every ingest
  micro-batch to *all* shards; each shard advances the cheap vectorised
  global state past every edge but performs the dominant per-endpoint work
  only for the nodes it owns (``IncrementalContextStore(owner=...)``).
  Per-shard buffered-context memory is O(owned · k) and per-shard ingest
  wall-clock approaches ``shared + owned/N`` — measured ≥ 2× at 4 shards
  by ``benchmarks/bench_serving_fleet.py``.

* **Central scoring at identical micro-batch boundaries.**  Queries are
  batched in arrival order with the *same* ``micro_batch_size`` boundaries
  a single service would use; each batch's rows fan out to their owner
  shards for materialisation, scatter back into one
  :class:`~repro.models.context._QueryOutputs` block, and the merged
  bundle is scored once by the router's model.  Same contexts, same batch
  shapes, same model/backend/dtype ⇒ bit-identical scores (per-shard
  scoring would change forward-pass batch shapes, and with them BLAS
  accumulation order).

* **Warm restart + catch-up.**  Each worker persists under
  ``<persist_path>/shard<i>`` (the PR 7 machinery, manifest now carrying
  the owner spec).  A restarted worker resumes its durable prefix in
  O(tail) and reports how far it got; the router replays the rest from a
  bounded ring of recent ingest batches — no full-stream replay.

* **Pooled telemetry.**  Every worker keeps its own metrics registry; the
  router's ``/metrics`` materialises a
  :class:`~repro.obs.metrics.PooledRegistryView` per scrape, fetching each
  worker's live payload over its control pipe and merging under
  ``proc=shardN`` labels (the PR 9 wire format).

:func:`serve` is the single front door: ``ServingConfig(num_shards=...)``
selects between one in-process service and a fleet, behind one client
protocol (``predict`` / ``ingest`` / ``health`` / ``shutdown``).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time as time_mod
import traceback
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.models.context import _QueryOutputs
from repro.serving.config import ServingConfig, resolve_serving_config
from repro.serving.service import PredictionService
from repro.serving.store import IncrementalContextStore
from repro.streams.ctdg import CTDG
from repro.streams.replay import endpoint_shard, iter_interleave
from repro.tasks.base import QuerySet, Task
from repro.utils.logging import get_logger

logger = get_logger("fleet")

#: Ceiling on a worker's build/resume before the router gives up on its
#: ready handshake.  Generous — a warm restart replays a durable tail —
#: but bounded, so an OOM-killed child cannot hang the router forever.
_SPAWN_TIMEOUT_S = 300.0

#: Arrays a worker ships back per materialised micro-batch slice, in the
#: order they are scattered into the router's output block.
_ROW_ARRAYS = (
    "neighbor_nodes",
    "neighbor_times",
    "neighbor_degrees",
    "edge_features",
    "edge_weights",
    "mask",
    "target_degrees",
    "target_last_times",
    "target_seen",
)


def shard_root(persist_path: str, shard_index: int) -> str:
    """Persistence root of one shard under the fleet's parent directory."""
    return os.path.join(persist_path, f"shard{shard_index}")


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _worker_main(
    conn,
    inherited_conns: tuple,
    shard_index: int,
    splash,
    num_nodes: int,
    edge_feature_dim: Optional[int],
    config: ServingConfig,
    task: Optional[Task],
    obs_mode: str,
) -> None:
    """Run one shard worker: build/resume its service, then serve commands.

    Forked from the router, so ``splash`` and friends arrive by memory
    inheritance, not pickling.  The fork also copies every pipe fd the
    router holds — the router end of *this* worker's pipe and both ends
    of every sibling's — and any of those staying open here would defeat
    EOF-based router-death detection (``conn.recv`` only raises
    ``EOFError`` once the last copy of the router end closes), so they
    are closed first.  The worker then re-initialises observability from
    scratch (cleared registry, no inherited trace writer/HTTP server),
    builds an owner-partitioned service — resuming from its persistence
    root when a manifest is already there — and answers command tuples
    over the pipe until ``shutdown``.  Every reply is ``("ok", value)``
    or ``("error", message)``; errors never kill the worker, so one
    poisoned query batch cannot take a shard down.
    """
    for other in inherited_conns:
        try:
            other.close()
        except OSError:  # pragma: no cover - already closed
            pass
    obs._fork_reinit(obs_mode)
    try:
        service = _build_worker_service(
            shard_index, splash, num_nodes, edge_feature_dim, config, task
        )
        conn.send(("ready", {"edges_ingested": service.store.edges_ingested}))
    except BaseException as error:  # pragma: no cover - exercised via router
        conn.send(("error", _format_error(error)))
        return
    store = service.store
    while True:
        try:
            command, payload = conn.recv()
        except EOFError:  # router died; nothing left to serve
            return
        try:
            if command == "ingest":
                base, src, dst, times, features, weights = payload
                # Base-aware dedup: ``base`` is the stream offset of the
                # batch's first edge.  A shard that already ingested part
                # (or all) of the batch — it succeeded in a broadcast a
                # sibling failed, or its durable restart prefix ends
                # inside a ring batch — skips the covered prefix, so
                # router retries and ring replay are idempotent.
                count = len(times)
                have = store.edges_ingested
                if have < base:
                    raise RuntimeError(
                        f"shard {shard_index} has ingested {have} edges but "
                        f"the batch starts at offset {base}; refusing to "
                        "ingest across a gap"
                    )
                skip = min(have - base, count)
                if skip < count:
                    service._ingest_arrays(
                        src[skip:],
                        dst[skip:],
                        times[skip:],
                        features[skip:] if features is not None else None,
                        weights[skip:] if weights is not None else None,
                    )
                conn.send(("ok", store.edges_ingested))
            elif command == "materialise":
                nodes, times = payload
                out = _QueryOutputs(
                    len(nodes), store.k, store.edge_feature_dim, store.stores
                )
                with obs.span("fleet.materialise", queries=len(nodes)):
                    store.write_queries(out, range(len(nodes)), nodes, times)
                conn.send(("ok", _pack_rows(out)))
            elif command == "metrics":
                conn.send(
                    (
                        "ok",
                        {
                            "payload": (
                                obs.get_registry().to_payload()
                                if obs.enabled()
                                else None
                            ),
                            "summary": service.metrics.summary(),
                        },
                    )
                )
            elif command == "health":
                conn.send(
                    (
                        "ok",
                        {
                            "pid": os.getpid(),
                            "shard": shard_index,
                            "edges_ingested": store.edges_ingested,
                            "durable_events": (
                                service.persistence.durable_events
                                if service.persistence is not None
                                else None
                            ),
                        },
                    )
                )
            elif command == "snapshot":
                if service.persistence is not None:
                    service.persistence.snapshot()
                conn.send(("ok", None))
            elif command == "shutdown":
                if service.persistence is not None:
                    service.persistence.flush()
                    service.persistence.close()
                conn.send(("ok", None))
                return
            else:
                conn.send(("error", f"unknown fleet command {command!r}"))
        except BaseException as error:
            conn.send(("error", _format_error(error)))


def _build_worker_service(
    shard_index: int,
    splash,
    num_nodes: int,
    edge_feature_dim: Optional[int],
    config: ServingConfig,
    task: Optional[Task],
) -> PredictionService:
    """Fresh owner-partitioned service — or a warm restart of one.

    When the shard's persistence root already holds a manifest (a
    previous incarnation ran there), the service resumes from it: the
    manifest records the ``(shard_index, num_shards)`` owner spec, so the
    rebuilt store owns exactly the nodes its predecessor owned, and only
    the durable log's unsnapshotted tail is replayed.
    """
    owner = (shard_index, config.num_shards)
    root = (
        shard_root(config.persist_path, shard_index)
        if config.persist_path is not None
        else None
    )
    worker_config = ServingConfig(
        micro_batch_size=config.micro_batch_size,
        dtype=config.dtype,
        backend=config.backend,
        snapshot_every=config.snapshot_every,
        drift_monitor=config.drift_monitor,
    )
    if root is not None and os.path.exists(os.path.join(root, "manifest.json")):
        service = PredictionService.resume(root, config=worker_config, task=task)
        if service.store.owner != owner:
            raise RuntimeError(
                f"persistence root {root} belongs to shard spec "
                f"{service.store.owner}, expected {owner}"
            )
        return service
    return PredictionService.from_splash(
        splash,
        num_nodes,
        edge_feature_dim,
        config=ServingConfig(
            micro_batch_size=worker_config.micro_batch_size,
            dtype=worker_config.dtype,
            backend=worker_config.backend,
            persist_path=root,
            snapshot_every=config.snapshot_every if root is not None else None,
            drift_monitor=config.drift_monitor,
        ),
        task=task,
        owner=owner,
    )


def _pack_rows(out: _QueryOutputs) -> Dict[str, object]:
    """Ship a worker-side output block's arrays through the pipe."""
    packed: Dict[str, object] = {
        name: getattr(out, name) for name in _ROW_ARRAYS
    }
    packed["target_features"] = dict(out.target_features)
    packed["neighbor_features"] = dict(out.neighbor_features)
    return packed


def _format_error(error: BaseException) -> str:
    return "".join(
        traceback.format_exception_only(type(error), error)
    ).strip() + "\n" + "".join(traceback.format_exc())


class FleetWorkerError(RuntimeError):
    """A shard worker reported an error (message carries its traceback)."""


def _drain(collectors: list) -> Tuple[list, list]:
    """Run every collector, never skipping one because another raised.

    A collector holds its handle's lock (and owes its pipe one pending
    response) until it runs; abandoning one after a sibling's failure
    would wedge every later call to that shard — including ``shutdown``.
    Returns ``(results, errors)`` with ``None`` standing in for a failed
    collector's result.
    """
    results: list = []
    errors: list = []
    for collect in collectors:
        try:
            results.append(collect())
        except Exception as error:
            results.append(None)
            errors.append(error)
    return results, errors


def _collect_all(collectors: list) -> list:
    """Drain every collector, then surface any shard errors — in that order."""
    results, errors = _drain(collectors)
    if errors:
        if len(errors) == 1:
            raise errors[0]
        raise FleetWorkerError(
            f"{len(errors)} shards failed: "
            + "; ".join(str(error) for error in errors)
        )
    return results


# ----------------------------------------------------------------------
# Router side
# ----------------------------------------------------------------------
class _WorkerHandle:
    """One shard's process + control pipe, with call serialisation.

    The pipe is a strict request/response channel; the lock keeps pairs
    atomic so a telemetry scrape thread (``metrics``) can interleave
    safely with the ingest/query thread.
    """

    def __init__(self, shard_index: int) -> None:
        self.shard_index = shard_index
        self.process = None
        self.conn = None
        self.lock = threading.Lock()

    def spawn(self, target_args: tuple, sibling_conns: tuple = ()) -> dict:
        """Fork the worker and wait for its ready/error handshake.

        ``sibling_conns`` are the router ends of every *other* worker's
        pipe; the forked child inherits them (plus the router end of its
        own pipe) and closes them first thing, so a sibling staying alive
        cannot keep this worker's EOF-based router-death detection from
        firing.  The handshake is bounded: a child that dies before
        reporting (OOM kill, crash in the fork) surfaces as a
        :class:`FleetWorkerError` naming the shard and exit code instead
        of a bare ``EOFError`` or an indefinite hang.
        """
        ctx = multiprocessing.get_context("fork")
        parent_conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, tuple(sibling_conns) + (parent_conn,))
            + target_args,
            name=f"fleet-shard{self.shard_index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        try:
            if not parent_conn.poll(_SPAWN_TIMEOUT_S):
                raise FleetWorkerError(
                    f"shard {self.shard_index} sent no ready handshake "
                    f"within {_SPAWN_TIMEOUT_S:.0f}s"
                )
            status, value = parent_conn.recv()
        except (EOFError, OSError) as error:
            self.process.join(timeout=5.0)
            exitcode = self.process.exitcode
            self.kill()
            raise FleetWorkerError(
                f"shard {self.shard_index} died during startup "
                f"(exitcode={exitcode})"
            ) from error
        if status != "ready":
            raise FleetWorkerError(
                f"shard {self.shard_index} failed to start: {value}"
            )
        return value

    def call(self, command: str, payload=None):
        with self.lock:
            if self.conn is None:
                raise FleetWorkerError(
                    f"shard {self.shard_index} has no live worker"
                )
            try:
                self.conn.send((command, payload))
                status, value = self.conn.recv()
            except (EOFError, OSError) as error:
                raise FleetWorkerError(
                    f"shard {self.shard_index} pipe failed during "
                    f"{command!r}: {error!r}"
                ) from error
        if status != "ok":
            raise FleetWorkerError(f"shard {self.shard_index}: {value}")
        return value

    def start_call(self, command: str, payload=None) -> Callable[[], object]:
        """Send now, collect later — the fan-out half of a broadcast.

        Acquires the handle's lock until the matching collector runs, so
        the send/recv pair stays atomic while *different* workers overlap.
        """
        self.lock.acquire()
        try:
            if self.conn is None:
                raise FleetWorkerError(
                    f"shard {self.shard_index} has no live worker"
                )
            self.conn.send((command, payload))
        except BaseException:
            self.lock.release()
            raise

        def collect():
            try:
                try:
                    status, value = self.conn.recv()
                except (EOFError, OSError) as error:
                    raise FleetWorkerError(
                        f"shard {self.shard_index} died mid-call: {error!r}"
                    ) from error
            finally:
                self.lock.release()
            if status != "ok":
                raise FleetWorkerError(f"shard {self.shard_index}: {value}")
            return value

        return collect

    def kill(self) -> None:
        """Hard-kill the worker process (no flush — the crash drill)."""
        with self.lock:
            if self.process is not None and self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=30.0)
            if self.conn is not None:
                try:
                    self.conn.close()
                except OSError:  # already closed
                    pass
            self.process = None
            self.conn = None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class FleetRouter:
    """Fans ingest/queries across shard workers; merges bit-exact results.

    Construct through :func:`serve` (``ServingConfig(num_shards >= 2)``).
    The router holds the model and a never-ingested *template* store (for
    output-block geometry, static tables and structural parameters — all
    ingest-independent), so scoring happens centrally on merged bundles at
    the exact micro-batch boundaries a single service would use.
    """

    def __init__(
        self,
        splash,
        num_nodes: int,
        edge_feature_dim: Optional[int] = None,
        config: Optional[ServingConfig] = None,
        *,
        task: Optional[Task] = None,
    ) -> None:
        config = resolve_serving_config(config, {}, where="FleetRouter")
        if config.num_shards < 2:
            raise ValueError(
                f"a fleet needs num_shards >= 2, got {config.num_shards}; "
                "use repro.serving.serve for a single in-process service"
            )
        if splash.model is None or not splash.processes:
            raise RuntimeError(
                "Splash has no trained model/processes; fit() or load() first"
            )
        if edge_feature_dim is None:
            edge_feature_dim = splash.model.edge_feature_dim
        self.config = config
        self.num_shards = config.num_shards
        self.splash = splash
        self.num_nodes = int(num_nodes)
        self.edge_feature_dim = int(edge_feature_dim)
        self._task = task
        # Template store: geometry + static tables for merged bundles.  It
        # never ingests, so it costs one partition_processes call, not a
        # replica of the stream state.
        template = IncrementalContextStore(
            splash.processes,
            splash.config.k,
            num_nodes,
            edge_feature_dim,
            propagation=splash.config.execution.propagation,
        )
        # The scorer reuses PredictionService for the locked model forward
        # (hot_swap-safe), dtype/backend flips, and latency accounting —
        # its store is the template, used only for bundle geometry.
        self._scorer = PredictionService(
            splash.model,
            template,
            task=task,
            micro_batch_size=config.micro_batch_size,
            dtype=config.dtype if config.dtype is not None else splash.fit_dtype,
            backend=(
                config.backend if config.backend is not None else splash.fit_backend
            ),
        )
        self._template = template
        self._edges_ingested = 0
        # Catch-up ring: (base_offset, batch arrays) of the most recent
        # ingest broadcasts, replayed to a restarted worker whose durable
        # state ends mid-ring.
        self._ring: Deque[Tuple[int, tuple]] = deque(maxlen=config.catchup_ring)
        self._workers: List[_WorkerHandle] = []
        obs_mode = "metrics" if obs.enabled() else "off"
        self._worker_args = lambda shard_index: (
            shard_index,
            splash,
            num_nodes,
            edge_feature_dim,
            config,
            task,
            obs_mode,
        )
        self._telemetry_args: Optional[dict] = None
        for shard_index in range(self.num_shards):
            handle = _WorkerHandle(shard_index)
            handle.spawn(
                self._worker_args(shard_index), self._sibling_conns(handle)
            )
            self._workers.append(handle)
        logger.info(
            "fleet up: %d shards over %d nodes (persist=%s)",
            self.num_shards,
            num_nodes,
            config.persist_path,
        )

    # ------------------------------------------------------------------
    @property
    def metrics(self):
        """The router-side scoring metrics (ServiceMetrics)."""
        return self._scorer.metrics

    @property
    def micro_batch_size(self) -> int:
        return self._scorer.micro_batch_size

    @property
    def edges_ingested(self) -> int:
        return self._edges_ingested

    @property
    def model(self):
        return self._scorer.model

    def owner_of(self, nodes) -> np.ndarray:
        """Shard index owning each node id."""
        return endpoint_shard(nodes, self.num_shards)

    def _sibling_conns(self, handle: _WorkerHandle) -> tuple:
        """Router ends of every *other* worker's pipe, for the fork to close."""
        return tuple(
            worker.conn
            for worker in self._workers
            if worker is not handle and worker.conn is not None
        )

    # ------------------------------------------------------------------
    def _broadcast(self, command: str, payload=None) -> list:
        """Send to every live worker, then collect — workers overlap.

        Collection is all-or-error but never partial: every started call
        is drained (releasing its handle lock and consuming its pipe
        response) before any shard's failure propagates, so one poisoned
        batch degrades into an exception instead of wedging the fleet.
        """
        collectors: list = []
        try:
            for worker in self._workers:
                collectors.append(worker.start_call(command, payload))
        except BaseException:
            _drain(collectors)  # release what was started, then re-raise
            raise
        return _collect_all(collectors)

    def ingest_arrays(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        times: np.ndarray,
        features: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
    ) -> int:
        """Broadcast one edge micro-batch to every shard.

        Every shard ingests every edge (global degree/propagation state
        must track the full stream — see the module docstring); the
        per-endpoint heavy lifting is partitioned by the stores' owner
        masks.  The batch lands in the catch-up ring before the broadcast,
        so a worker that dies mid-broadcast can still be caught up.

        Failure is retryable: the broadcast tags the batch with its
        stream offset and workers skip any prefix they already hold, so
        when some shards succeed and one errors (``_edges_ingested``
        stays put), re-ingesting the same — or a corrected — batch
        no-ops on the shards that got it the first time instead of
        double-ingesting.
        """
        src = np.asarray(src)
        dst = np.asarray(dst)
        times = np.asarray(times)
        count = len(times)
        base = self._edges_ingested
        batch = (src, dst, times, features, weights)
        if self._ring and self._ring[-1][0] == base:
            # A retry after a failed broadcast re-lands at the same base:
            # replace the failed attempt's ring entry so ring bases stay
            # contiguous for restart_shard's replay arithmetic.
            self._ring[-1] = (base, batch)
        else:
            self._ring.append((base, batch))
        start = time_mod.perf_counter()
        with obs.span("fleet.ingest", batch=count):
            self._broadcast("ingest", (base,) + batch)
        self._edges_ingested = base + count
        self.metrics.record_ingest(count, time_mod.perf_counter() - start)
        obs.inc("fleet.ingest.events", count)
        obs.set_gauge("fleet.edges_ingested", self._edges_ingested)
        return count

    def ingest(self, edges: CTDG) -> int:
        return self.ingest_arrays(
            edges.src, edges.dst, edges.times, edges.edge_features, edges.weights
        )

    # ------------------------------------------------------------------
    def _materialise_batch(
        self, nodes: np.ndarray, times: np.ndarray
    ) -> _QueryOutputs:
        """One merged output block: rows fanned to owner shards."""
        out = _QueryOutputs(
            len(nodes),
            self._template.k,
            self.edge_feature_dim,
            self._template.stores,
        )
        owners = self.owner_of(nodes)
        plan: List[Tuple[np.ndarray, Callable[[], object]]] = []
        try:
            for shard_index in range(self.num_shards):
                rows = np.where(owners == shard_index)[0]
                if not len(rows):
                    continue
                collect = self._workers[shard_index].start_call(
                    "materialise", (nodes[rows], times[rows])
                )
                plan.append((rows, collect))
        except BaseException:
            _drain([collect for _, collect in plan])
            raise
        packs = _collect_all([collect for _, collect in plan])
        for (rows, _), packed in zip(plan, packs):
            for name in _ROW_ARRAYS:
                getattr(out, name)[rows] = packed[name]
            for name, value in packed["target_features"].items():
                out.target_features[name][rows] = value
            for name, value in packed["neighbor_features"].items():
                out.neighbor_features[name][rows] = value
        return out

    def _score_batch(self, nodes: np.ndarray, times: np.ndarray) -> np.ndarray:
        t0 = time_mod.perf_counter()
        with obs.span("serving.materialise", queries=len(nodes)):
            out = self._materialise_batch(nodes, times)
            bundle = self._template.bundle_from(out, QuerySet(nodes, times.copy()))
        t1 = time_mod.perf_counter()
        with obs.span("serving.score", queries=len(nodes)):
            scores = self._scorer._score_bundle(bundle)
        self.metrics.record_batch(len(nodes), t1 - t0, time_mod.perf_counter() - t1)
        obs.inc("serving.queries", len(nodes))
        return scores

    def predict(self, nodes: np.ndarray, times: np.ndarray) -> np.ndarray:
        """Score queries against the fleet's current state.

        Identical micro-batch boundaries to
        :meth:`PredictionService.predict`, so the scores are bit-identical
        to the single-process service on the same ingested prefix.
        """
        nodes = np.asarray(nodes, dtype=np.int64).ravel()
        times = np.broadcast_to(np.asarray(times, dtype=np.float64), nodes.shape)
        outputs = []
        for lo in range(0, len(nodes), self.micro_batch_size):
            hi = min(lo + self.micro_batch_size, len(nodes))
            outputs.append(self._score_batch(nodes[lo:hi], times[lo:hi]))
        if not outputs:
            return self._scorer._empty_scores()
        return np.concatenate(outputs, axis=0)

    def serve_stream(
        self,
        ctdg: CTDG,
        query_nodes: np.ndarray,
        query_times: np.ndarray,
        *,
        ingest_batch: int = 1024,
    ) -> np.ndarray:
        """Replay a recorded stream through the fleet, returning scores.

        Mirrors :meth:`PredictionService.serve_stream` exactly — same
        §III interleave, same ingest batching, same query micro-batch
        chunking — which is what makes the returned scores bit-comparable.
        """
        if ingest_batch <= 0:
            raise ValueError(f"ingest_batch must be positive, got {ingest_batch}")
        query_nodes = np.asarray(query_nodes, dtype=np.int64)
        query_times = np.asarray(query_times, dtype=np.float64)
        has_features = ctdg.edge_features is not None
        start_wall = time_mod.perf_counter()
        chunks: List[Tuple[int, int, np.ndarray]] = []
        for kind, lo, hi in iter_interleave(
            ctdg.times, query_times, max_block=ingest_batch
        ):
            if kind == "edges":
                self.ingest_arrays(
                    ctdg.src[lo:hi],
                    ctdg.dst[lo:hi],
                    ctdg.times[lo:hi],
                    ctdg.edge_features[lo:hi] if has_features else None,
                    ctdg.weights[lo:hi],
                )
                continue
            for c_lo in range(lo, hi, self.micro_batch_size):
                c_hi = min(c_lo + self.micro_batch_size, hi)
                scores = self._score_batch(
                    query_nodes[c_lo:c_hi], query_times[c_lo:c_hi]
                )
                chunks.append((c_lo, c_hi, scores))
        self.metrics.wall_seconds += time_mod.perf_counter() - start_wall
        if not chunks:
            return self._scorer._empty_scores()
        first = chunks[0][2]
        scores_out = np.zeros(
            (len(query_nodes),) + first.shape[1:], dtype=first.dtype
        )
        for c_lo, c_hi, scores in chunks:
            scores_out[c_lo:c_hi] = scores
        return scores_out

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def kill_shard(self, shard_index: int) -> None:
        """Hard-kill one worker (SIGKILL, no flush) — the crash drill."""
        self._workers[shard_index].kill()

    def restart_shard(self, shard_index: int) -> dict:
        """Bring a dead (or stale) shard back and catch it up.

        The replacement worker warm-restarts from its persistence root —
        O(durable tail), not O(stream) — and reports how many edges its
        durable state covers.  The router then replays only the missing
        suffix from the catch-up ring (the worker's base-aware ingest
        skips the ring batch prefix its durable state already covers).
        Raises when the ring no longer reaches back far enough — the
        caller must then rebuild the shard from a fuller source instead
        of silently serving a hole.

        The replacement is **forked from the router**, so any lock a
        live telemetry thread (HTTP scrape, SLO ticker) happened to hold
        at fork time would arrive in the child permanently held.  The
        router therefore quiesces its telemetry plane around the fork —
        stop the server and engine, spawn, bring them back on the same
        port — trading a momentary scrape outage for a child that cannot
        deadlock before ``obs._fork_reinit`` runs.
        """
        handle = self._workers[shard_index]
        telemetry_args = (
            self._telemetry_args
            if self._scorer._telemetry_server is not None
            else None
        )
        if telemetry_args is not None:
            self.stop_telemetry()
        try:
            handle.kill()
            ready = handle.spawn(
                self._worker_args(shard_index), self._sibling_conns(handle)
            )
            resumed = int(ready["edges_ingested"])
            replayed = 0
            if resumed < self._edges_ingested:
                if not self._ring or self._ring[0][0] > resumed:
                    covered = (
                        self._ring[0][0] if self._ring else self._edges_ingested
                    )
                    raise FleetWorkerError(
                        f"shard {shard_index} resumed at edge {resumed} but "
                        f"the catch-up ring only reaches back to edge "
                        f"{covered}; increase ServingConfig.catchup_ring or "
                        "snapshot more often"
                    )
                watermark = resumed
                for base, batch in self._ring:
                    if base + len(batch[2]) <= watermark:
                        continue
                    watermark = int(handle.call("ingest", (base,) + batch))
                replayed = watermark - resumed
        finally:
            if telemetry_args is not None:
                self.start_telemetry(**telemetry_args)
        obs.inc("fleet.restarts")
        logger.info(
            "shard %d restarted: resumed %d edges durable, replayed %d from "
            "the ring",
            shard_index,
            resumed,
            replayed,
        )
        return {"resumed": resumed, "replayed": replayed}

    # ------------------------------------------------------------------
    # Health / telemetry / shutdown
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Liveness + progress of every shard, plus the router's view."""
        shards = []
        for worker in self._workers:
            if not worker.alive:
                shards.append({"shard": worker.shard_index, "alive": False})
                continue
            try:
                info = worker.call("health")
                info["alive"] = True
            except (FleetWorkerError, EOFError, OSError) as error:
                # A worker dying between the alive check and the call
                # must degrade to "not alive", not fail the whole report.
                info = {
                    "shard": worker.shard_index,
                    "alive": False,
                    "error": str(error),
                }
            shards.append(info)
        healthy = all(s.get("alive") for s in shards) and all(
            s.get("edges_ingested") == self._edges_ingested
            for s in shards
            if s.get("alive")
        )
        return {
            "healthy": healthy,
            "edges_ingested": self._edges_ingested,
            "num_shards": self.num_shards,
            "shards": shards,
        }

    def _collect_worker_payloads(self) -> List[Tuple[dict, Dict[str, str]]]:
        """Live metrics payloads from every reachable worker, labelled."""
        collected = []
        for worker in self._workers:
            if not worker.alive:
                continue
            try:
                result = worker.call("metrics")
            except (FleetWorkerError, EOFError, OSError):
                continue  # scrape must not fail because one shard is down
            if result["payload"] is not None:
                collected.append(
                    (result["payload"], {"proc": f"shard{worker.shard_index}"})
                )
        return collected

    def pooled_registry(self):
        """Registry view pooling the router's and every worker's metrics."""
        from repro.obs.metrics import PooledRegistryView

        return PooledRegistryView(
            obs.get_registry() if obs.enabled() else None,
            self._collect_worker_payloads,
        )

    @property
    def telemetry(self):
        return self._scorer.telemetry

    def start_telemetry(
        self,
        port: int = 0,
        *,
        host: str = "127.0.0.1",
        rules=None,
        slo_interval: float = 2.0,
    ):
        """Expose the *pooled* fleet registry over HTTP; returns the server.

        One server at the router: ``/metrics`` renders every shard's live
        registry merged under ``proc=shardN`` labels next to the router's
        own series, ``/healthz`` runs the SLO engine over the same pooled
        view, ``/statusz`` adds the router's scoring summary.
        """
        if self._scorer._telemetry_server is not None:
            return self._scorer._telemetry_server
        from repro.obs.http import TelemetryServer
        from repro.obs.slo import SloEngine, default_serving_rules

        pooled = self.pooled_registry()
        engine = SloEngine(
            rules if rules is not None else default_serving_rules(),
            registry=pooled,
            interval=slo_interval,
            flight=obs.get_flight_recorder(),
        ).start()
        server = TelemetryServer(
            port=port,
            host=host,
            registry=pooled,
            health=engine,
            statusz_extra=self.metrics.summary,
        )
        server.start()
        self._scorer._telemetry_server = server
        self._scorer._telemetry_engine = engine
        self._scorer._owns_telemetry_engine = True
        # Remembered (with the actually-bound port) so restart_shard can
        # quiesce the telemetry threads around its fork and then bring
        # the plane back where clients expect it.
        self._telemetry_args = {
            "port": server.port,
            "host": host,
            "rules": rules,
            "slo_interval": slo_interval,
        }
        return server

    def stop_telemetry(self) -> None:
        self._scorer.stop_telemetry()

    def shutdown(self) -> None:
        """Flush every shard's durable state and stop the fleet."""
        self.stop_telemetry()
        for worker in self._workers:
            if not worker.alive:
                continue
            try:
                worker.call("shutdown")
            except FleetWorkerError as error:  # pragma: no cover - best effort
                logger.warning("shard shutdown failed: %s", error)
            if worker.process is not None:
                worker.process.join(timeout=30.0)
            worker.kill()  # reap anything still alive; closes the pipe

    def __enter__(self) -> "FleetRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


# ----------------------------------------------------------------------
# The front door
# ----------------------------------------------------------------------
class ServingClient:
    """One client protocol over either deployment shape.

    ``predict`` / ``ingest`` / ``health`` / ``shutdown`` behave
    identically whether ``backend`` is a single in-process
    :class:`PredictionService` or a :class:`FleetRouter` — by the fleet's
    bit-exactness guarantee, even the returned score bits match.
    """

    def __init__(self, backend) -> None:
        self._backend = backend

    @property
    def backend(self):
        """The underlying service or router (escape hatch)."""
        return self._backend

    @property
    def is_fleet(self) -> bool:
        return isinstance(self._backend, FleetRouter)

    @property
    def metrics(self):
        return self._backend.metrics

    @property
    def telemetry(self):
        return self._backend.telemetry

    def predict(self, nodes, times) -> np.ndarray:
        return self._backend.predict(nodes, times)

    def ingest(
        self, src, dst, times, features=None, weights=None
    ) -> int:
        if isinstance(self._backend, FleetRouter):
            return self._backend.ingest_arrays(src, dst, times, features, weights)
        return self._backend._ingest_arrays(src, dst, times, features, weights)

    def serve_stream(self, ctdg, query_nodes, query_times, **kwargs) -> np.ndarray:
        return self._backend.serve_stream(ctdg, query_nodes, query_times, **kwargs)

    def health(self) -> dict:
        if isinstance(self._backend, FleetRouter):
            return self._backend.health()
        service = self._backend
        return {
            "healthy": True,
            "edges_ingested": service.store.edges_ingested,
            "num_shards": 1,
            "shards": [
                {
                    "shard": 0,
                    "alive": True,
                    "pid": os.getpid(),
                    "edges_ingested": service.store.edges_ingested,
                    "durable_events": (
                        service.persistence.durable_events
                        if service.persistence is not None
                        else None
                    ),
                }
            ],
        }

    def shutdown(self) -> None:
        if isinstance(self._backend, FleetRouter):
            self._backend.shutdown()
            return
        service = self._backend
        service.stop_telemetry()
        if service.persistence is not None:
            service.persistence.flush()
            service.persistence.close()
        service.store.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def serve(
    splash,
    config: Optional[ServingConfig] = None,
    *,
    num_nodes: int,
    edge_feature_dim: Optional[int] = None,
    task: Optional[Task] = None,
) -> ServingClient:
    """The serving front door: one call, one client, either topology.

    ``ServingConfig(num_shards=...)`` selects the deployment shape —
    ≤ 1 builds a single in-process :class:`PredictionService`, ≥ 2 builds
    a :class:`FleetRouter` over that many endpoint-hash-partitioned worker
    processes — behind one :class:`ServingClient` protocol
    (``predict`` / ``ingest`` / ``health`` / ``shutdown``).  Both shapes
    return bit-identical scores for the same stream; the fleet adds
    horizontal ingest throughput and per-shard warm restart.
    """
    config = resolve_serving_config(config, {}, where="serve")
    if config.num_shards >= 2:
        router = FleetRouter(
            splash,
            num_nodes,
            edge_feature_dim,
            config,
            task=task,
        )
        if config.telemetry_port is not None:
            router.start_telemetry(
                config.telemetry_port,
                host=config.telemetry_host,
                rules=config.slo_rules,
                slo_interval=config.slo_interval,
            )
        return ServingClient(router)
    service = PredictionService.from_splash(
        splash,
        num_nodes,
        edge_feature_dim,
        config=config,
        task=task,
    )
    return ServingClient(service)
