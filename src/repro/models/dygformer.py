"""DyGFormer baseline (Yu et al., NeurIPS 2023).

DyGFormer's signature components are (a) a *neighbour co-occurrence
encoding* — how often each neighbour appears in the target's recent
history — and (b) a transformer over the resulting token sequence to
capture long-term temporal dependencies.  For node-level tasks the single
target sequence is encoded (the original encodes both endpoints of a
candidate link); patching is unnecessary at k ≤ 32.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.features.time_encoding import TimeEncoder
from repro.models.base import ContextModel, ModelConfig
from repro.models.common import assemble_tokens
from repro.models.context import ContextBundle
from repro.nn.attention import MultiHeadAttention
from repro.nn.layers import MLP, LayerNorm, Linear, Module
from repro.nn.tensor import Tensor, concat
from repro.utils.rng import spawn_rngs


def cooccurrence_counts(neighbor_nodes: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """(B, k) count of each slot's neighbour id within its own row.

    Repeated interaction partners receive higher counts — DyGFormer's
    frequency signal; padded slots count 0.
    """
    batch, k = neighbor_nodes.shape
    counts = np.zeros((batch, k))
    for row in range(batch):
        valid = mask[row]
        if not valid.any():
            continue
        ids, inverse, freq = np.unique(
            neighbor_nodes[row][valid], return_inverse=True, return_counts=True
        )
        counts[row][valid] = freq[inverse]
    return counts


class TransformerBlock(Module):
    """Pre-norm transformer encoder block."""

    def __init__(self, dim: int, num_heads: int, rng=None) -> None:
        super().__init__()
        rng_a, rng_f = spawn_rngs(rng, 2)
        self.norm1 = LayerNorm(dim)
        self.attention = MultiHeadAttention(
            dim, dim, dim, num_heads=num_heads, rng=rng_a
        )
        self.norm2 = LayerNorm(dim)
        self.ffn = MLP([dim, dim * 2, dim], rng=rng_f)

    def forward(self, tokens: Tensor, mask: np.ndarray) -> Tensor:
        normed = self.norm1(tokens)
        tokens = tokens + self.attention(normed, normed, normed, mask=~mask)
        return tokens + self.ffn(self.norm2(tokens))


class DyGFormer(ContextModel):
    name = "DyGFormer"

    def __init__(
        self,
        feature_name: str,
        feature_dim: int,
        edge_feature_dim: int,
        config: Optional[ModelConfig] = None,
        num_blocks: int = 2,
        num_heads: int = 2,
        cooccurrence_dim: int = 8,
    ) -> None:
        config = config or ModelConfig()
        super().__init__(config)
        self.feature_name = feature_name
        self.feature_dim = feature_dim
        self.edge_feature_dim = edge_feature_dim
        d_h = config.hidden_dim
        rng_c, rng_in, rng_b, rng_m, rng_d = spawn_rngs(config.seed, 5)

        self.time_encoder = TimeEncoder(config.time_dim)
        self.cooccurrence_proj = Linear(1, cooccurrence_dim, rng=rng_c)
        token_width = (
            feature_dim + edge_feature_dim + config.time_dim + cooccurrence_dim
        )
        self.input_proj = Linear(token_width, d_h, rng=rng_in)
        self.blocks = [
            TransformerBlock(d_h, num_heads, rng=int(rng_b.integers(2**31)))
            for _ in range(num_blocks)
        ]
        for index, block in enumerate(self.blocks):
            setattr(self, f"block{index}", block)
        self.merge = MLP(
            [d_h + feature_dim, d_h, d_h], dropout=config.dropout, rng=rng_m
        )
        self._decoder_rng = rng_d

    def build_decoder(self, output_dim: int) -> Module:
        d_h = self.config.hidden_dim
        return MLP(
            [d_h, d_h, output_dim], dropout=self.config.dropout, rng=self._decoder_rng
        )

    def encode(self, bundle: ContextBundle, idx: np.ndarray) -> Tensor:
        idx = np.asarray(idx, dtype=np.int64)
        tokens, mask, target_feats = assemble_tokens(
            bundle, idx, self.feature_name, self.time_encoder
        )
        counts = cooccurrence_counts(bundle.neighbor_nodes[idx], mask)
        co_enc = self.cooccurrence_proj(Tensor(counts[..., None]))
        hidden = self.input_proj(concat([Tensor(tokens), co_enc], axis=-1))
        # Guard: rows with zero valid keys would attend uniformly; keep them
        # but mask their pooled output below.
        safe_mask = mask.copy()
        empty_rows = ~mask.any(axis=1)
        safe_mask[empty_rows, 0] = True
        for block in self.blocks:
            hidden = block(hidden, safe_mask)
        counts_valid = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
        pooled = (hidden * mask[..., None].astype(float)).sum(axis=1) * (
            1.0 / counts_valid
        )
        return self.merge(concat([pooled, Tensor(target_feats)], axis=-1))
