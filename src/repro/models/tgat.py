"""TGAT baseline (Xu et al., ICLR 2020) — temporal graph attention.

Node representations are produced by multi-head attention from the target
node (query) over its k recent temporal neighbours (keys/values), with the
functional time encoding concatenated to every input, followed by a
feed-forward merge with the target's own feature.  This reproduction keeps
the architecture's signature — attention over temporal neighbourhoods —
at one hop, which is the configuration used for node-level tasks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.features.time_encoding import TimeEncoder
from repro.models.base import ContextModel, ModelConfig
from repro.models.common import assemble_tokens
from repro.models.context import ContextBundle
from repro.nn.attention import MultiHeadAttention
from repro.nn.layers import MLP, Module
from repro.nn.tensor import Tensor, concat
from repro.utils.rng import spawn_rngs


class TGAT(ContextModel):
    name = "TGAT"

    def __init__(
        self,
        feature_name: str,
        feature_dim: int,
        edge_feature_dim: int,
        config: Optional[ModelConfig] = None,
        num_heads: int = 2,
    ) -> None:
        config = config or ModelConfig()
        super().__init__(config)
        self.feature_name = feature_name
        self.feature_dim = feature_dim
        self.edge_feature_dim = edge_feature_dim
        d_h = config.hidden_dim
        rng_a, rng_m, rng_d = spawn_rngs(config.seed, 3)

        self.time_encoder = TimeEncoder(config.time_dim)
        key_dim = feature_dim + edge_feature_dim + config.time_dim
        query_dim = feature_dim + config.time_dim
        self.attention = MultiHeadAttention(
            query_dim, key_dim, d_h, num_heads=num_heads, rng=rng_a
        )
        self.merge = MLP(
            [d_h + feature_dim, d_h, d_h], dropout=config.dropout, rng=rng_m
        )
        self._decoder_rng = rng_d

    def build_decoder(self, output_dim: int) -> Module:
        d_h = self.config.hidden_dim
        return MLP(
            [d_h, d_h, output_dim], dropout=self.config.dropout, rng=self._decoder_rng
        )

    def encode(self, bundle: ContextBundle, idx: np.ndarray) -> Tensor:
        tokens, mask, target_feats = assemble_tokens(
            bundle, idx, self.feature_name, self.time_encoder
        )
        batch = tokens.shape[0]
        # Query token: target feature + φ_t(0) (zero gap to "now").
        zero_enc = self.time_encoder(np.zeros(batch))
        query = np.concatenate([target_feats, zero_enc], axis=-1)[:, None, :]
        # Fully padded rows would attend uniformly over garbage; neutralise
        # them after attention using the row-validity flag.
        row_has_neighbors = mask.any(axis=1)
        attended = self.attention(
            Tensor(query), Tensor(tokens), Tensor(tokens), mask=~mask
        )  # (B, 1, d_h)
        attended = attended.reshape(batch, self.config.hidden_dim)
        attended = attended * row_has_neighbors[:, None].astype(float)
        return self.merge(concat([attended, Tensor(target_feats)], axis=-1))
