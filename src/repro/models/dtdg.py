"""DTDG baselines for distribution shift: DIDA and SLID (paper Fig. 12).

Both methods come from the discrete-time dynamic graph (DTDG) literature —
they consume a sequence of graph *snapshots*, not an edge stream, and
predict one label per node per snapshot (footnote 4 of the paper explains
why this limits them on CTDGs: no real-time answers between snapshots).

* **DIDA** (Zhang et al., NeurIPS 2022): disentangles node representations
  into an invariant and a variant channel and applies *spatio-temporal
  interventions* — resampling the variant channel across samples — so that
  predictions rely on the invariant part.  Reproduced here as a two-channel
  GCN whose training mixes permuted variant components and penalises the
  variance of the risk across interventions.
* **SLID** (Zhang et al., NeurIPS 2024): learns *spectrally invariant*
  filters — a polynomial graph filter whose coefficients are shared across
  snapshots, with a temporal-consistency penalty tying filtered
  representations of consecutive snapshots.

Queries are mapped to snapshots by time; a query's score is its node's
prediction at the snapshot covering the query (the best a DTDG method can
offer on an edge stream).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.base import FitHistory, ModelConfig, StreamModel
from repro.models.context import ContextBundle
from repro.nn import functional as F
from repro.nn.layers import MLP, Linear, Parameter
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import Tensor, no_grad
from repro.tasks.base import Task
from repro.utils.rng import new_rng, spawn_rngs


def normalized_adjacency(
    src: np.ndarray, dst: np.ndarray, num_nodes: int
) -> np.ndarray:
    """Dense symmetric D^{-1/2}(A+I)D^{-1/2} for one snapshot window."""
    adjacency = np.zeros((num_nodes, num_nodes))
    np.add.at(adjacency, (src, dst), 1.0)
    np.add.at(adjacency, (dst, src), 1.0)
    adjacency = np.minimum(adjacency, 1.0)
    adjacency += np.eye(num_nodes)
    degree = adjacency.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1.0))
    return adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]


class DTDGBaseline(StreamModel):
    """Shared snapshotting, labelling, and training loop."""

    def __init__(
        self,
        feature_name: str,
        feature_dim: int,
        num_snapshots: int = 8,
        config: Optional[ModelConfig] = None,
    ) -> None:
        super().__init__()
        self.config = config or ModelConfig()
        self.feature_name = feature_name
        self.feature_dim = feature_dim
        self.num_snapshots = num_snapshots
        self._task: Optional[Task] = None
        self._rng = new_rng(self.config.seed)
        self._scores_cache: Optional[np.ndarray] = None

    # -- subclass API ---------------------------------------------------
    def snapshot_logits(self, adjacency: np.ndarray, features: np.ndarray) -> Tensor:
        raise NotImplementedError

    def regularizer(
        self, adjacency: np.ndarray, features: np.ndarray, logits: Tensor,
        labels: np.ndarray, label_mask: np.ndarray, task: Task,
        label_query_idx: np.ndarray,
    ) -> Optional[Tensor]:
        return None

    # --------------------------------------------------------------
    def _prepare(self, bundle: ContextBundle):
        ctdg = bundle.ctdg
        boundaries = np.quantile(
            ctdg.times, np.linspace(0, 1, self.num_snapshots + 1)
        )
        boundaries[0] = ctdg.start_time - 1.0
        features = (
            bundle.static_tables[self.feature_name]
            if self.feature_name in bundle.static_tables
            else np.zeros((ctdg.num_nodes, self.feature_dim))
        )
        snapshots = []
        for s in range(self.num_snapshots):
            lo = np.searchsorted(ctdg.times, boundaries[s], side="right")
            hi = np.searchsorted(ctdg.times, boundaries[s + 1], side="right")
            adjacency = normalized_adjacency(
                ctdg.src[lo:hi], ctdg.dst[lo:hi], ctdg.num_nodes
            )
            snapshots.append(adjacency)
        # Map each query to its snapshot.
        query_snapshot = (
            np.searchsorted(boundaries[1:-1], bundle.queries.times, side="left")
        ).astype(int)
        return snapshots, features, query_snapshot

    def fit(
        self,
        bundle: ContextBundle,
        task: Task,
        train_idx: np.ndarray,
        val_idx: Optional[np.ndarray] = None,
    ) -> FitHistory:
        self._task = task
        if not hasattr(self, "decoder"):
            self._build(task.output_dim, bundle)
        snapshots, features, query_snapshot = self._prepare(bundle)
        optimizer = Adam(self.parameters(), lr=self.config.lr)
        train_idx = np.asarray(train_idx, dtype=np.int64)
        history = FitHistory()
        train_by_snapshot = [
            train_idx[query_snapshot[train_idx] == s]
            for s in range(self.num_snapshots)
        ]
        for _ in range(self.config.epochs):
            self.train()
            epoch_loss = []
            for s, adjacency in enumerate(snapshots):
                q_idx = train_by_snapshot[s]
                if q_idx.size == 0:
                    continue
                optimizer.zero_grad()
                logits_full = self.snapshot_logits(adjacency, features)
                nodes = bundle.queries.nodes[q_idx]
                logits = logits_full[nodes]
                loss = task.loss(logits, q_idx)
                extra = self.regularizer(
                    adjacency, features, logits_full,
                    task.labels, np.zeros(0), task, q_idx,
                )
                if extra is not None:
                    loss = loss + extra
                loss.backward()
                clip_grad_norm(self.parameters(), self.config.grad_clip)
                optimizer.step()
                epoch_loss.append(loss.item())
            history.train_losses.append(
                float(np.mean(epoch_loss)) if epoch_loss else 0.0
            )
        # Cache per-query scores from per-snapshot predictions.
        self.eval()
        cache = np.zeros((len(bundle.queries), task.output_dim))
        with no_grad():
            for s, adjacency in enumerate(snapshots):
                rows = np.nonzero(query_snapshot == s)[0]
                if rows.size == 0:
                    continue
                logits_full = self.snapshot_logits(adjacency, features)
                cache[rows] = logits_full.data[bundle.queries.nodes[rows]]
        self._scores_cache = cache
        return history

    def predict_scores(self, bundle: ContextBundle, idx: np.ndarray) -> np.ndarray:
        if self._task is None or self._scores_cache is None:
            raise RuntimeError("predict_scores called before fit")
        return self._task.scores(self._scores_cache[np.asarray(idx, dtype=np.int64)])

    def _build(self, output_dim: int, bundle: ContextBundle) -> None:
        raise NotImplementedError


class DIDA(DTDGBaseline):
    name = "DIDA"

    def __init__(
        self,
        *args,
        num_interventions: int = 3,
        intervention_weight: float = 0.5,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.num_interventions = num_interventions
        self.intervention_weight = intervention_weight

    def _build(self, output_dim: int, bundle: ContextBundle) -> None:
        d_h = self.config.hidden_dim
        rng_i, rng_v, rng_d = spawn_rngs(self.config.seed, 3)
        self.invariant = Linear(self.feature_dim, d_h, rng=rng_i)
        self.variant = Linear(self.feature_dim, d_h, rng=rng_v)
        self.decoder = MLP([d_h, d_h, output_dim], rng=rng_d)
        self._output_dim = output_dim

    def _channels(self, adjacency: np.ndarray, features: np.ndarray):
        agg = adjacency @ features  # one propagation step
        z_invariant = F.relu(self.invariant(Tensor(agg)))
        z_variant = F.relu(self.variant(Tensor(agg)))
        return z_invariant, z_variant

    def snapshot_logits(self, adjacency: np.ndarray, features: np.ndarray) -> Tensor:
        z_invariant, z_variant = self._channels(adjacency, features)
        return self.decoder(z_invariant + z_variant * 0.1)

    def regularizer(
        self, adjacency, features, logits_full, labels, label_mask, task, q_idx
    ) -> Optional[Tensor]:
        # Spatio-temporal intervention: permute the variant channel across
        # nodes; the risk should not change if predictions rely on the
        # invariant channel.  Penalise the variance of intervened risks.
        z_invariant, z_variant = self._channels(adjacency, features)
        losses = []
        for _ in range(self.num_interventions):
            perm = self._rng.permutation(z_variant.shape[0])
            mixed = self.decoder(z_invariant + z_variant[perm] * 0.1)
            losses.append(task.loss(mixed[self._query_nodes(q_idx)], q_idx))
        mean = losses[0]
        for loss in losses[1:]:
            mean = mean + loss
        mean = mean * (1.0 / len(losses))
        variance = (losses[0] - mean) ** 2
        for loss in losses[1:]:
            variance = variance + (loss - mean) ** 2
        variance = variance * (1.0 / len(losses))
        return (mean + variance) * self.intervention_weight

    def _query_nodes(self, q_idx):
        return self._bundle_nodes[q_idx]

    def fit(self, bundle, task, train_idx, val_idx=None):
        self._bundle_nodes = bundle.queries.nodes
        return super().fit(bundle, task, train_idx, val_idx)


class SLID(DTDGBaseline):
    name = "SLID"

    def __init__(
        self, *args, poly_order: int = 3, consistency_weight: float = 0.1, **kwargs
    ):
        super().__init__(*args, **kwargs)
        self.poly_order = poly_order
        self.consistency_weight = consistency_weight
        self._previous_repr: Optional[np.ndarray] = None

    def _build(self, output_dim: int, bundle: ContextBundle) -> None:
        d_h = self.config.hidden_dim
        rng_w, rng_d = spawn_rngs(self.config.seed, 2)
        self.filter_coeffs = Parameter(
            np.array([1.0] + [0.5] * self.poly_order), name="filter_coeffs"
        )
        self.project = Linear(self.feature_dim, d_h, rng=rng_w)
        self.decoder = MLP([d_h, d_h, output_dim], rng=rng_d)

    def snapshot_logits(self, adjacency: np.ndarray, features: np.ndarray) -> Tensor:
        # Polynomial spectral filter: Σ_p θ_p A^p X, θ shared across time.
        powers = [features]
        current = features
        for _ in range(self.poly_order):
            current = adjacency @ current
            powers.append(current)
        filtered = Tensor(powers[0]) * self.filter_coeffs[0]
        for p in range(1, len(powers)):
            filtered = filtered + Tensor(powers[p]) * self.filter_coeffs[p]
        representation = F.relu(self.project(filtered))
        self._last_representation = representation
        return self.decoder(representation)

    def regularizer(
        self, adjacency, features, logits_full, labels, label_mask, task, q_idx
    ) -> Optional[Tensor]:
        # Temporal consistency of filtered representations across snapshots
        # (the spectral-invariance surrogate).
        current = self._last_representation
        penalty = None
        if self._previous_repr is not None:
            diff = current - self._previous_repr
            penalty = (diff * diff).mean() * self.consistency_weight
        self._previous_repr = current.data.copy()
        return penalty
