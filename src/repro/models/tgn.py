"""TGN baseline (Rossi et al., 2020).

TGN couples a GRU *memory module* — updated by messages built from the two
endpoints' memories, the edge feature, and a time encoding — with a
temporal graph attention *embedding module* that attends from the node's
memory over its recent neighbours' memories at prediction time.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.features.time_encoding import TimeEncoder
from repro.models.base import ModelConfig
from repro.models.context import ContextBundle
from repro.models.memory import MemoryModel, tbatch_levels
from repro.nn.attention import MultiHeadAttention
from repro.nn.layers import MLP
from repro.nn.rnn import GRUCell
from repro.nn.tensor import Tensor, concat, stack
from repro.utils.rng import spawn_rngs


class TGN(MemoryModel):
    name = "TGN"

    def __init__(
        self,
        feature_name: str,
        feature_dim: int,
        edge_feature_dim: int,
        num_nodes: int,
        config: Optional[ModelConfig] = None,
        num_heads: int = 2,
    ) -> None:
        super().__init__(feature_name, feature_dim, edge_feature_dim, num_nodes, config)
        d_h = self.config.hidden_dim
        d_t = self.config.time_dim
        rng_g, rng_a, rng_m, self._decoder_rng = spawn_rngs(self.config.seed, 4)
        self.time_encoder = TimeEncoder(d_t)
        # other endpoint's memory ‖ e ‖ φ_t
        message_dim = d_h + edge_feature_dim + d_t
        self.memory_updater = GRUCell(message_dim, d_h, rng=rng_g)
        query_dim = d_h + feature_dim
        key_dim = d_h + feature_dim + edge_feature_dim + d_t
        self.attention = MultiHeadAttention(
            query_dim, key_dim, d_h, num_heads=num_heads, rng=rng_a
        )
        self.merge = MLP([d_h + d_h, d_h, d_h], dropout=self.config.dropout, rng=rng_m)
        self._time_scale = 1.0

    def build_decoder(self, output_dim: int) -> None:
        d_h = self.config.hidden_dim
        self.decoder = MLP(
            [d_h, d_h, output_dim], dropout=self.config.dropout, rng=self._decoder_rng
        )

    # ------------------------------------------------------------------
    def update_block(
        self, bundle: ContextBundle, edge_slice: slice, read_row
    ) -> Tuple[Dict[int, Tensor], Optional[Tensor]]:
        ctdg = bundle.ctdg
        src = ctdg.src[edge_slice]
        dst = ctdg.dst[edge_slice]
        times = ctdg.times[edge_slice]
        if self._time_scale == 1.0 and ctdg.end_time > ctdg.start_time:
            self._time_scale = (ctdg.end_time - ctdg.start_time) / max(
                ctdg.num_edges, 1
            )
        feats = (
            ctdg.edge_features[edge_slice]
            if ctdg.edge_features is not None
            else np.zeros((len(src), 0))
        )
        pending: Dict[int, Tensor] = {}

        def row(node: int) -> Tensor:
            got = pending.get(node)
            return got if got is not None else read_row(node)

        for level in tbatch_levels(src, dst):
            u = src[level]
            v = dst[level]
            t = times[level]
            e_f = feats[level]
            h_u = stack([row(int(n)) for n in u])
            h_v = stack([row(int(n)) for n in v])
            dt_u = self.time_encoder((t - self._last_update[u]) / self._time_scale)
            dt_v = self.time_encoder((t - self._last_update[v]) / self._time_scale)
            msg_u = concat([h_v, Tensor(np.concatenate([e_f, dt_u], axis=-1))], axis=-1)
            msg_v = concat([h_u, Tensor(np.concatenate([e_f, dt_v], axis=-1))], axis=-1)
            new_u = self.memory_updater(msg_u, h_u)
            new_v = self.memory_updater(msg_v, h_v)
            for position, node in enumerate(u):
                pending[int(node)] = new_u[position]
            for position, node in enumerate(v):
                pending[int(node)] = new_v[position]
        return pending, None

    # ------------------------------------------------------------------
    def decode(self, bundle: ContextBundle, idx: np.ndarray, read_row) -> Tensor:
        nodes = bundle.queries.nodes[idx]
        h = stack([read_row(int(n)) for n in nodes])  # (B, d_h)
        own_feats = self.node_features(bundle, nodes)
        query = concat([h, Tensor(own_feats)], axis=-1).reshape(
            len(nodes), 1, -1
        )

        neighbors = bundle.neighbor_nodes[idx]
        mask = bundle.mask[idx]
        safe = np.maximum(neighbors, 0)
        # Neighbour memories are read from the persistent table (pre-block
        # state) — the same approximation TGN's embedding module makes when
        # it reads the memory bank.
        neighbor_memory = self._memory[safe] * mask[..., None]
        neighbor_feats = self.node_features(bundle, safe.reshape(-1)).reshape(
            safe.shape[0], safe.shape[1], -1
        ) * mask[..., None]
        time_enc = self.time_encoder(bundle.time_deltas(idx) / self._time_scale)
        key_parts = [neighbor_memory, neighbor_feats]
        if bundle.edge_feature_dim:
            key_parts.append(bundle.edge_features[idx])
        key_parts.append(time_enc)
        keys = np.concatenate(key_parts, axis=-1)

        row_has_neighbors = mask.any(axis=1)
        attended = self.attention(query, Tensor(keys), Tensor(keys), mask=~mask)
        attended = attended.reshape(len(nodes), self.config.hidden_dim)
        attended = attended * row_has_neighbors[:, None].astype(float)
        merged = self.merge(concat([attended, h], axis=-1))
        return self.decoder(merged)
