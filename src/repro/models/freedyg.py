"""FreeDyG baseline (Tian et al., ICLR 2024) — frequency-enhanced MLP.

FreeDyG's signature is a *learnable frequency-domain filter*: the recent
neighbour token sequence is mapped to the frequency domain, multiplied by a
learnable complex filter, and mapped back, letting the model emphasise
periodic interaction patterns that plain token mixing misses.

Because the token sequence length k is small, the DFT/IDFT are implemented
as fixed matrix products (exactly equivalent to FFT), keeping the whole
filter differentiable through the real-valued autograd engine: for
real input x, with F = DFT matrix and W the complex filter,
Re(IDFT(W ⊙ Fx)) is expanded into real/imaginary parts.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.features.time_encoding import TimeEncoder
from repro.models.base import ContextModel, ModelConfig
from repro.models.common import assemble_tokens
from repro.models.context import ContextBundle
from repro.nn.layers import MLP, LayerNorm, Linear, Module, Parameter
from repro.nn.tensor import Tensor, concat
from repro.utils.rng import spawn_rngs


def dft_matrices(k: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Real/imag parts of the k-point DFT and IDFT matrices."""
    indices = np.arange(k)
    angles = -2.0 * np.pi * np.outer(indices, indices) / k
    dft_re, dft_im = np.cos(angles), np.sin(angles)
    idft_re, idft_im = np.cos(-angles) / k, np.sin(-angles) / k
    return dft_re, dft_im, idft_re, idft_im


class FrequencyFilter(Module):
    """Learnable per-(frequency, channel) complex filter on (B, k, d) tokens."""

    def __init__(self, k: int, dim: int) -> None:
        super().__init__()
        self.k = k
        self.dim = dim
        dft_re, dft_im, idft_re, idft_im = dft_matrices(k)
        self._dft_re, self._dft_im = dft_re, dft_im
        self._idft_re, self._idft_im = idft_re, idft_im
        # Identity-initialised filter: W = 1 + 0i keeps the input unchanged
        # at step 0, so training starts from a sane operating point.
        self.filter_re = Parameter(np.ones((k, dim)), name="filter_re")
        self.filter_im = Parameter(np.zeros((k, dim)), name="filter_im")

    def forward(self, tokens: Tensor) -> Tensor:
        # x is real → Fx = (DFT_re x) + i (DFT_im x); matrices act on axis 1.
        def apply_matrix(matrix: np.ndarray, x: Tensor) -> Tensor:
            return (x.swapaxes(1, 2) @ matrix.T).swapaxes(1, 2)

        freq_re = apply_matrix(self._dft_re, tokens)
        freq_im = apply_matrix(self._dft_im, tokens)
        filtered_re = freq_re * self.filter_re - freq_im * self.filter_im
        filtered_im = freq_re * self.filter_im + freq_im * self.filter_re
        out_re = apply_matrix(self._idft_re, filtered_re) - apply_matrix(
            self._idft_im, filtered_im
        )
        return out_re  # imaginary part ≈ 0 for a conjugate-symmetric filter


class FreeDyG(ContextModel):
    name = "FreeDyG"

    def __init__(
        self,
        feature_name: str,
        feature_dim: int,
        edge_feature_dim: int,
        k: int,
        config: Optional[ModelConfig] = None,
    ) -> None:
        config = config or ModelConfig()
        super().__init__(config)
        self.feature_name = feature_name
        self.feature_dim = feature_dim
        self.edge_feature_dim = edge_feature_dim
        self.k = k
        d_h = config.hidden_dim
        rng_in, rng_m, rng_d = spawn_rngs(config.seed, 3)

        self.time_encoder = TimeEncoder(config.time_dim)
        token_width = feature_dim + edge_feature_dim + config.time_dim
        self.input_proj = Linear(token_width, d_h, rng=rng_in)
        self.filter = FrequencyFilter(k, d_h)
        self.norm = LayerNorm(d_h)
        self.ffn = MLP([d_h, d_h * 2, d_h], dropout=config.dropout, rng=rng_m)
        self.out_norm = LayerNorm(d_h)
        self.merge = MLP(
            [d_h + feature_dim, d_h, d_h], dropout=config.dropout, rng=rng_m
        )
        self._decoder_rng = rng_d

    def build_decoder(self, output_dim: int) -> Module:
        d_h = self.config.hidden_dim
        return MLP(
            [d_h, d_h, output_dim], dropout=self.config.dropout, rng=self._decoder_rng
        )

    def encode(self, bundle: ContextBundle, idx: np.ndarray) -> Tensor:
        tokens, mask, target_feats = assemble_tokens(
            bundle, idx, self.feature_name, self.time_encoder
        )
        hidden = self.input_proj(Tensor(tokens))
        filtered = self.filter(self.norm(hidden))
        hidden = hidden + filtered
        hidden = hidden + self.ffn(self.out_norm(hidden))
        counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
        pooled = (hidden * mask[..., None].astype(float)).sum(axis=1) * (1.0 / counts)
        return self.merge(concat([pooled, Tensor(target_feats)], axis=-1))
