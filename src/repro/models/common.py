"""Shared input assembly for the baseline TGNN implementations.

Every context-based TGNN consumes the same per-query token matrix — the k
recent temporal edges rendered as [neighbour feature ‖ edge feature ‖ time
encoding] rows — and differs only in the encoder applied on top.  Keeping
assembly in one place guarantees all baselines see identical information.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.features.time_encoding import TimeEncoder
from repro.models.context import ContextBundle


def assemble_tokens(
    bundle: ContextBundle,
    idx: np.ndarray,
    feature_name: str,
    time_encoder: TimeEncoder,
    include_edge_features: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build (tokens, mask, target_features) for a query batch.

    tokens: (B, k, d_token) with padded rows zeroed;
    mask:   (B, k) bool;
    target_features: (B, d_v) features of the target node at query time.
    """
    idx = np.asarray(idx, dtype=np.int64)
    neighbor_feats = bundle.get_neighbor_features(feature_name, idx)
    target_feats = bundle.get_target_features(feature_name, idx)
    time_enc = time_encoder(bundle.time_deltas(idx))
    parts = [neighbor_feats]
    if include_edge_features and bundle.edge_feature_dim:
        parts.append(bundle.edge_features[idx])
    parts.append(time_enc)
    tokens = np.concatenate(parts, axis=-1)
    mask = bundle.mask[idx]
    tokens = tokens * mask[..., None]
    return tokens, mask, target_feats


def token_dim(
    bundle: ContextBundle,
    feature_name: str,
    time_dim: int,
    include_edge_features: bool = True,
) -> int:
    """Width of the token rows produced by :func:`assemble_tokens`."""
    d = bundle.feature_dim(feature_name) + time_dim
    if include_edge_features:
        d += bundle.edge_feature_dim
    return d
