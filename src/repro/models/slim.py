"""SLIM — Simple MLP-based model with Integration of Messages (paper §IV-C).

The paper's core architectural contribution: a TGNN built from MLPs only.
For a target node v_i at time t with recent temporal edges N_i(t):

  raw message  rm(l) = [x*_j(t(l)) ‖ x_ij ‖ φ_t(t − t(l))]          (Eq. 14)
  message      m(l)  = MLP1(rm(l)) · w_ij                            (Eq. 16)
  intermediate h̃_i  = MLP2([x*_i(t) ‖ mean_l m(l)])                 (Eq. 17)
  output       h_i   = LN1(h̃_i) + λ_s · LN2(Σ_l m(l))               (Eq. 18)
  prediction   Ŷ_i   = Decoder(h_i)                                  (Eq. 19)

All inputs are constants of the materialised context, so each query costs
O(k·(d_v+d_e+d_t)·d_h + L·d_h²), independent of graph size (paper §IV-C).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.features.time_encoding import TimeEncoder
from repro.models.base import ContextModel, ModelConfig
from repro.models.context import ContextBundle
from repro.nn.layers import MLP, LayerNorm, Module
from repro.nn.tensor import Tensor, concat
from repro.utils.rng import spawn_rngs


class SLIM(ContextModel):
    """The SLIM TGNN operating on one selected feature process."""

    name = "SLIM"

    def __init__(
        self,
        feature_name: str,
        feature_dim: int,
        edge_feature_dim: int,
        config: Optional[ModelConfig] = None,
    ) -> None:
        config = config or ModelConfig()
        super().__init__(config)
        self.feature_name = feature_name
        self.feature_dim = feature_dim
        self.edge_feature_dim = edge_feature_dim
        d_h = config.hidden_dim
        rng1, rng2, rng3 = spawn_rngs(config.seed, 3)

        self.time_encoder = TimeEncoder(config.time_dim)
        message_in = feature_dim + edge_feature_dim + config.time_dim
        hidden = [d_h] * max(config.num_layers - 1, 1)
        self.message_mlp = MLP(
            [message_in] + hidden + [d_h], dropout=config.dropout, rng=rng1
        )
        self.aggregate_mlp = MLP(
            [feature_dim + d_h] + hidden + [d_h], dropout=config.dropout, rng=rng2
        )
        self.ln_representation = LayerNorm(d_h)
        self.ln_skip = LayerNorm(d_h)
        self.skip_weight = config.skip_weight
        self._decoder_rng = rng3

    def build_decoder(self, output_dim: int) -> Module:
        d_h = self.config.hidden_dim
        return MLP(
            [d_h, d_h, output_dim], dropout=self.config.dropout, rng=self._decoder_rng
        )

    # ------------------------------------------------------------------
    def encode(self, bundle: ContextBundle, idx: np.ndarray) -> Tensor:
        idx = np.asarray(idx, dtype=np.int64)
        neighbor_feats = bundle.get_neighbor_features(self.feature_name, idx)
        target_feats = bundle.get_target_features(self.feature_name, idx)
        deltas = bundle.time_deltas(idx)
        time_enc = self.time_encoder(deltas)  # (B, k, d_t)
        parts = [neighbor_feats]
        if self.edge_feature_dim:
            parts.append(bundle.edge_features[idx])
        parts.append(time_enc)
        raw_messages = np.concatenate(parts, axis=-1)  # (B, k, message_in)

        mask = bundle.mask[idx]
        counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)  # (B, 1)
        weights = (bundle.edge_weights[idx] * mask)[..., None]  # (B, k, 1)

        messages = self.message_mlp(Tensor(raw_messages)) * weights  # (Eq. 16)
        summed = messages.sum(axis=1)  # (B, d_h): Σ_l m(l), padded slots are zero
        mean_messages = summed * (1.0 / counts)

        intermediate = self.aggregate_mlp(
            concat([Tensor(target_feats), mean_messages], axis=-1)
        )  # (Eq. 17)
        return self.ln_representation(intermediate) + self.ln_skip(summed) * (
            self.skip_weight
        )  # (Eq. 18)
