"""DySAT baseline (Sankar et al., WSDM 2020), CTDG variant.

DySAT factorises attention into a *structural* block (over neighbours
within a time slice) and a *temporal* block (across slices).  Following the
CTDG adaptation used in the paper (TGL's DySAT), the k recent temporal
edges are binned into ``num_slices`` recency slices; structural attention
summarises each slice, and temporal self-attention (with learned slice
position embeddings) mixes the slice summaries into the final
representation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.features.time_encoding import TimeEncoder
from repro.models.base import ContextModel, ModelConfig
from repro.models.common import assemble_tokens
from repro.models.context import ContextBundle
from repro.nn.attention import MultiHeadAttention
from repro.nn.layers import MLP, Module, Parameter
from repro.nn.tensor import Tensor, concat
from repro.utils.rng import spawn_rngs


class DySAT(ContextModel):
    name = "DySAT"

    def __init__(
        self,
        feature_name: str,
        feature_dim: int,
        edge_feature_dim: int,
        config: Optional[ModelConfig] = None,
        num_slices: int = 3,
        num_heads: int = 2,
    ) -> None:
        config = config or ModelConfig()
        super().__init__(config)
        if num_slices <= 0:
            raise ValueError(f"num_slices must be positive, got {num_slices}")
        self.feature_name = feature_name
        self.feature_dim = feature_dim
        self.edge_feature_dim = edge_feature_dim
        self.num_slices = num_slices
        d_h = config.hidden_dim
        rng_s, rng_t, rng_m, rng_d, rng_p = spawn_rngs(config.seed, 5)

        self.time_encoder = TimeEncoder(config.time_dim)
        key_dim = feature_dim + edge_feature_dim + config.time_dim
        query_dim = feature_dim + config.time_dim
        self.structural_attention = MultiHeadAttention(
            query_dim, key_dim, d_h, num_heads=num_heads, rng=rng_s
        )
        self.temporal_attention = MultiHeadAttention(
            d_h, d_h, d_h, num_heads=num_heads, rng=rng_t
        )
        self.position_embedding = Parameter(
            rng_p.normal(0.0, 0.1, size=(num_slices, d_h)), name="slice_positions"
        )
        self.merge = MLP(
            [d_h + feature_dim, d_h, d_h], dropout=config.dropout, rng=rng_m
        )
        self._decoder_rng = rng_d

    def build_decoder(self, output_dim: int) -> Module:
        d_h = self.config.hidden_dim
        return MLP(
            [d_h, d_h, output_dim], dropout=self.config.dropout, rng=self._decoder_rng
        )

    def encode(self, bundle: ContextBundle, idx: np.ndarray) -> Tensor:
        tokens, mask, target_feats = assemble_tokens(
            bundle, idx, self.feature_name, self.time_encoder
        )
        batch, k, _ = tokens.shape
        d_h = self.config.hidden_dim
        # Recency slices: slot positions split evenly (entries are stored
        # oldest → newest, so slices are chronological windows).
        boundaries = np.linspace(0, k, self.num_slices + 1).astype(int)
        zero_enc = self.time_encoder(np.zeros(batch))
        query = Tensor(np.concatenate([target_feats, zero_enc], axis=-1)[:, None, :])

        slice_summaries = []
        slice_valid = np.zeros((batch, self.num_slices), dtype=bool)
        for s in range(self.num_slices):
            lo, hi = boundaries[s], boundaries[s + 1]
            if hi <= lo:
                slice_summaries.append(Tensor(np.zeros((batch, 1, d_h))))
                continue
            sub_tokens = tokens[:, lo:hi]
            sub_mask = mask[:, lo:hi]
            slice_valid[:, s] = sub_mask.any(axis=1)
            attended = self.structural_attention(
                query, Tensor(sub_tokens), Tensor(sub_tokens), mask=~sub_mask
            )
            attended = attended * slice_valid[:, s][:, None, None].astype(float)
            slice_summaries.append(attended)
        sequence = concat(slice_summaries, axis=1)  # (B, S, d_h)
        sequence = sequence + self.position_embedding
        mixed = self.temporal_attention(
            sequence, sequence, sequence, mask=~slice_valid
        )  # (B, S, d_h)
        counts = np.maximum(slice_valid.sum(axis=1, keepdims=True), 1.0)
        pooled = (mixed * slice_valid[..., None].astype(float)).sum(axis=1) * (
            1.0 / counts
        )
        return self.merge(concat([pooled, Tensor(target_feats)], axis=-1))
