"""JODIE baseline (Kumar et al., KDD 2019).

JODIE maintains a dynamic embedding per node, updated by a pair of RNNs on
every interaction (one for each endpoint role), and *projects* the
embedding forward in time for prediction:  ĥ_u(t) = (1 + Δt · w) ⊙ h_u.
Training uses JODIE's t-batching so each node appears once per vectorised
level (see :mod:`repro.models.memory`).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.features.time_encoding import TimeEncoder
from repro.models.context import ContextBundle
from repro.models.memory import MemoryModel, tbatch_levels
from repro.models.base import ModelConfig
from repro.nn.layers import MLP, Parameter
from repro.nn.rnn import RNNCell
from repro.nn.tensor import Tensor, concat, stack
from repro.utils.rng import spawn_rngs


class JODIE(MemoryModel):
    name = "JODIE"

    def __init__(
        self,
        feature_name: str,
        feature_dim: int,
        edge_feature_dim: int,
        num_nodes: int,
        config: Optional[ModelConfig] = None,
    ) -> None:
        super().__init__(feature_name, feature_dim, edge_feature_dim, num_nodes, config)
        d_h = self.config.hidden_dim
        rng_s, rng_d, self._decoder_rng = spawn_rngs(self.config.seed, 3)
        self.time_encoder = TimeEncoder(self.config.time_dim)
        rnn_input = d_h + edge_feature_dim + self.config.time_dim
        self.rnn_src = RNNCell(rnn_input, d_h, rng=rng_s)
        self.rnn_dst = RNNCell(rnn_input, d_h, rng=rng_d)
        self.projection = Parameter(np.zeros(d_h), name="time_projection")
        self._time_scale = 1.0

    def build_decoder(self, output_dim: int) -> None:
        d_h = self.config.hidden_dim
        self.decoder = MLP(
            [d_h + self.feature_dim, d_h, output_dim],
            dropout=self.config.dropout,
            rng=self._decoder_rng,
        )

    # ------------------------------------------------------------------
    def update_block(
        self, bundle: ContextBundle, edge_slice: slice, read_row
    ) -> Tuple[Dict[int, Tensor], Optional[Tensor]]:
        ctdg = bundle.ctdg
        src = ctdg.src[edge_slice]
        dst = ctdg.dst[edge_slice]
        times = ctdg.times[edge_slice]
        if self._time_scale == 1.0 and ctdg.end_time > ctdg.start_time:
            self._time_scale = (ctdg.end_time - ctdg.start_time) / max(
                ctdg.num_edges, 1
            )
        feats = (
            ctdg.edge_features[edge_slice]
            if ctdg.edge_features is not None
            else np.zeros((len(src), 0))
        )
        pending: Dict[int, Tensor] = {}

        def row(node: int) -> Tensor:
            got = pending.get(node)
            return got if got is not None else read_row(node)

        for level in tbatch_levels(src, dst):
            u = src[level]
            v = dst[level]
            t = times[level]
            e_f = feats[level]
            h_u = stack([row(int(n)) for n in u])
            h_v = stack([row(int(n)) for n in v])
            dt_u = self.time_encoder((t - self._last_update[u]) / self._time_scale)
            dt_v = self.time_encoder((t - self._last_update[v]) / self._time_scale)
            input_u = concat(
                [h_v, Tensor(np.concatenate([e_f, dt_u], axis=-1))], axis=-1
            )
            input_v = concat(
                [h_u, Tensor(np.concatenate([e_f, dt_v], axis=-1))], axis=-1
            )
            new_u = self.rnn_src(input_u, h_u)
            new_v = self.rnn_dst(input_v, h_v)
            for position, node in enumerate(u):
                pending[int(node)] = new_u[position]
            for position, node in enumerate(v):
                pending[int(node)] = new_v[position]
        return pending, None

    # ------------------------------------------------------------------
    def decode(self, bundle: ContextBundle, idx: np.ndarray, read_row) -> Tensor:
        nodes = bundle.queries.nodes[idx]
        times = bundle.queries.times[idx]
        h = stack([read_row(int(n)) for n in nodes])
        deltas = np.maximum(times - bundle.target_last_times[idx], 0.0)
        deltas = (deltas / self._time_scale)[:, None]
        projected = h * (self.projection * Tensor(deltas) + 1.0)
        features = self.node_features(bundle, nodes)
        return self.decoder(concat([projected, Tensor(features)], axis=-1))
