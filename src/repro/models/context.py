"""Materialised query contexts: one chronological replay, many model runs.

TGNNs make predictions at query time from the k most recent temporal edges
of the target node (Eq. 6) plus streaming feature state.  For epoch-based
training it is standard (DyGLib, TGL) to *materialise* each query's context
once — this module performs that single replay, recording for every query:

* the k-recent neighbour ids, edge times, edge features, and edge weights;
* each neighbour's degree at edge time (for structural features);
* per-feature-process snapshots x_j(t(l)) of neighbour features at edge
  time, and x_i(t) of the target at query time (Eqs. 4-5 evolve features
  over time, so snapshots cannot be recovered after the fact).

The result, a :class:`ContextBundle`, is the common input to SLIM and every
context-based baseline, guaranteeing all methods see identical information.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.features.base import FeatureProcess, OnlineFeatureStore
from repro.features.random_feat import StaticStore
from repro.features.structural import StructuralFeatureProcess, degree_encoding
from repro.streams.ctdg import CTDG
from repro.streams.degrees import DegreeTracker
from repro.streams.neighbors import NeighborEntry, RecentNeighborBuffer
from repro.streams.replay import replay
from repro.tasks.base import QuerySet


@dataclass
class ContextBundle:
    """Columnar per-query contexts over a full stream replay."""

    ctdg: CTDG
    queries: QuerySet
    k: int
    neighbor_nodes: np.ndarray  # (Q, k) int64, -1 where padded
    neighbor_times: np.ndarray  # (Q, k) float
    neighbor_degrees: np.ndarray  # (Q, k) int64: deg_j(t(l)) at edge time
    edge_features: np.ndarray  # (Q, k, d_e)
    edge_weights: np.ndarray  # (Q, k) float
    mask: np.ndarray  # (Q, k) bool, True where a neighbour entry exists
    target_degrees: np.ndarray  # (Q,) deg_i(t) at query time
    target_last_times: np.ndarray  # (Q,) time of target's latest edge (or query time)
    target_seen: np.ndarray  # (Q,) bool: target appeared during training period
    target_features: Dict[str, np.ndarray] = field(default_factory=dict)
    neighbor_features: Dict[str, np.ndarray] = field(default_factory=dict)
    structural_params: Dict[str, float] = field(default_factory=dict)
    static_tables: Dict[str, np.ndarray] = field(default_factory=dict)

    JOINT_NAME = "joint"

    # ------------------------------------------------------------------
    @property
    def num_queries(self) -> int:
        return len(self.queries)

    @property
    def edge_feature_dim(self) -> int:
        return int(self.edge_features.shape[2])

    @property
    def feature_names(self) -> List[str]:
        names = set(self.target_features) | set(self.static_tables)
        if self.structural_params:
            names.add("structural")
        return sorted(names)

    @property
    def splash_candidates(self) -> List[str]:
        """The SPLASH candidate processes present: {random, positional,
        structural} ∩ available."""
        wanted = ("random", "positional", "structural")
        return [name for name in wanted if name in self.feature_names]

    def feature_dim(self, name: str) -> int:
        if name in self.target_features:
            return int(self.target_features[name].shape[1])
        if name in self.static_tables:
            return int(self.static_tables[name].shape[1])
        if name == "structural" and self.structural_params:
            return int(self.structural_params["dim"])
        if name == self.JOINT_NAME:
            return sum(self.feature_dim(part) for part in self.splash_candidates)
        raise KeyError(f"no feature process {name!r} in this bundle")

    def get_target_features(
        self, name: str, idx: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """(Q, d_v) features of the target node at query time for process ``name``.

        Pass ``idx`` to restrict to a query subset (lazily computed
        structural/static features are then only produced for those rows).
        ``name`` may also be ``"joint"``: the concatenation of all SPLASH
        candidate processes (for the SLIM+Joint ablation).
        """
        if name == self.JOINT_NAME:
            return np.concatenate(
                [self.get_target_features(part, idx) for part in self.splash_candidates],
                axis=-1,
            )
        if name in self.target_features:
            table = self.target_features[name]
            return table if idx is None else table[idx]
        if name in self.static_tables:
            nodes = self.queries.nodes if idx is None else self.queries.nodes[idx]
            return self.static_tables[name][nodes]
        if name == "structural" and self.structural_params:
            degrees = self.target_degrees if idx is None else self.target_degrees[idx]
            return degree_encoding(
                degrees,
                int(self.structural_params["dim"]),
                self.structural_params["alpha"],
            )
        raise KeyError(f"no feature process {name!r} in this bundle")

    def get_neighbor_features(
        self, name: str, idx: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """(Q, k, d_v) features of each buffered neighbour at its edge time."""
        if name == self.JOINT_NAME:
            return np.concatenate(
                [
                    self.get_neighbor_features(part, idx)
                    for part in self.splash_candidates
                ],
                axis=-1,
            )
        if name in self.neighbor_features:
            table = self.neighbor_features[name]
            return table if idx is None else table[idx]
        if name in self.static_tables:
            nodes = self.neighbor_nodes if idx is None else self.neighbor_nodes[idx]
            mask = self.mask if idx is None else self.mask[idx]
            safe = np.maximum(nodes, 0)
            gathered = self.static_tables[name][safe]
            gathered[~mask] = 0.0
            return gathered
        if name == "structural" and self.structural_params:
            degrees = (
                self.neighbor_degrees if idx is None else self.neighbor_degrees[idx]
            )
            return degree_encoding(
                degrees,
                int(self.structural_params["dim"]),
                self.structural_params["alpha"],
            )
        raise KeyError(f"no feature process {name!r} in this bundle")

    def time_deltas(self, idx: Optional[np.ndarray] = None) -> np.ndarray:
        """(Q, k) non-negative gaps between query time and each edge time."""
        times = self.queries.times if idx is None else self.queries.times[idx]
        neighbor_times = self.neighbor_times if idx is None else self.neighbor_times[idx]
        mask = self.mask if idx is None else self.mask[idx]
        deltas = times[:, None] - neighbor_times
        deltas[~mask] = 0.0
        return np.maximum(deltas, 0.0)

    def neighbor_counts(self) -> np.ndarray:
        return self.mask.sum(axis=1)


class _BundleCollector:
    """Stream processor that fills the bundle arrays during replay."""

    def __init__(
        self,
        num_queries: int,
        k: int,
        edge_feature_dim: int,
        stores: Dict[str, OnlineFeatureStore],
        seen_mask: Optional[np.ndarray],
    ) -> None:
        self.k = k
        self.stores = stores
        self.seen_mask = seen_mask
        self.buffer = RecentNeighborBuffer(k)
        self.degrees = DegreeTracker()
        q = num_queries
        self.neighbor_nodes = np.full((q, k), -1, dtype=np.int64)
        self.neighbor_times = np.zeros((q, k))
        self.neighbor_degrees = np.zeros((q, k), dtype=np.int64)
        self.edge_features = np.zeros((q, k, edge_feature_dim))
        self.edge_weights = np.zeros((q, k))
        self.mask = np.zeros((q, k), dtype=bool)
        self.target_degrees = np.zeros(q, dtype=np.int64)
        self.target_last_times = np.zeros(q)
        self.target_seen = np.zeros(q, dtype=bool)
        self.target_features = {
            name: np.zeros((q, store.dim)) for name, store in stores.items()
        }
        self.neighbor_features = {
            name: np.zeros((q, k, store.dim)) for name, store in stores.items()
        }
        self._store_names = sorted(stores)

    # ------------------------------------------------------------------
    def on_edge(self, index, src, dst, time, feature, weight) -> None:
        # Degree and feature state become *inclusive* of this edge before
        # snapshotting (deg_i(t) counts edges with t(l) ≤ t, Eq. 2).
        self.degrees.observe_edge(src, dst)
        for name in self._store_names:
            self.stores[name].on_edge(index, src, dst, time, feature, weight)
        src_snap = tuple(
            self.stores[name].feature_of(src).copy() for name in self._store_names
        )
        dst_snap = tuple(
            self.stores[name].feature_of(dst).copy() for name in self._store_names
        )
        src_degree = self.degrees.degree(src)
        dst_degree = self.degrees.degree(dst)
        self.buffer.insert(
            src,
            NeighborEntry(
                neighbor=dst,
                time=time,
                edge_index=index,
                weight=weight,
                feature=feature,
                neighbor_degree=dst_degree,
                snapshot_features=dst_snap,
            ),
        )
        self.buffer.insert(
            dst,
            NeighborEntry(
                neighbor=src,
                time=time,
                edge_index=index,
                weight=weight,
                feature=feature,
                neighbor_degree=src_degree,
                snapshot_features=src_snap,
            ),
        )

    def on_query(self, index, node, time) -> None:
        entries = self.buffer.neighbors(node)
        self.target_degrees[index] = self.degrees.degree(node)
        self.target_last_times[index] = entries[-1].time if entries else time
        if self.seen_mask is not None and 0 <= node < len(self.seen_mask):
            self.target_seen[index] = self.seen_mask[node]
        for name in self._store_names:
            self.target_features[name][index] = self.stores[name].feature_of(node)
        for slot, entry in enumerate(entries):
            self.neighbor_nodes[index, slot] = entry.neighbor
            self.neighbor_times[index, slot] = entry.time
            self.neighbor_degrees[index, slot] = entry.neighbor_degree
            self.edge_weights[index, slot] = entry.weight
            self.mask[index, slot] = True
            if entry.feature is not None and self.edge_features.shape[2]:
                self.edge_features[index, slot] = entry.feature
            for pos, name in enumerate(self._store_names):
                self.neighbor_features[name][index, slot] = entry.snapshot_features[pos]


def build_context_bundle(
    ctdg: CTDG,
    queries: QuerySet,
    k: int,
    processes: Sequence[FeatureProcess] = (),
) -> ContextBundle:
    """Replay ``ctdg`` once and materialise contexts for every query.

    ``processes`` must already be fitted (their seen-node features learned on
    the training prefix).  Structural processes are handled lazily — only
    degrees are stored, and φ_d is applied on access — because their features
    are a pure function of degree.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    stores: Dict[str, OnlineFeatureStore] = {}
    structural_params: Dict[str, float] = {}
    static_tables: Dict[str, np.ndarray] = {}
    seen_mask: Optional[np.ndarray] = None
    for process in processes:
        if not process.is_fitted():
            raise RuntimeError(f"feature process {process.name!r} is not fitted")
        seen_mask = process.seen_mask
        if isinstance(process, StructuralFeatureProcess):
            structural_params = {"dim": float(process.dim), "alpha": process.alpha}
            continue
        store = process.make_store()
        if isinstance(store, StaticStore):
            # Static features never change, so x_j(t(l)) == table[j]; gather
            # lazily from the table instead of storing (Q, k, d_v) snapshots.
            static_tables[process.name] = store.table
            continue
        stores[process.name] = store

    collector = _BundleCollector(
        num_queries=len(queries),
        k=k,
        edge_feature_dim=ctdg.edge_feature_dim,
        stores=stores,
        seen_mask=seen_mask,
    )
    replay(ctdg, queries.nodes, queries.times, [collector])
    return ContextBundle(
        ctdg=ctdg,
        queries=queries,
        k=k,
        neighbor_nodes=collector.neighbor_nodes,
        neighbor_times=collector.neighbor_times,
        neighbor_degrees=collector.neighbor_degrees,
        edge_features=collector.edge_features,
        edge_weights=collector.edge_weights,
        mask=collector.mask,
        target_degrees=collector.target_degrees,
        target_last_times=collector.target_last_times,
        target_seen=collector.target_seen,
        target_features=collector.target_features,
        neighbor_features=collector.neighbor_features,
        structural_params=structural_params,
        static_tables=static_tables,
    )
