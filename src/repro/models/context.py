"""Materialised query contexts: one chronological replay, many model runs.

TGNNs make predictions at query time from the k most recent temporal edges
of the target node (Eq. 6) plus streaming feature state.  For epoch-based
training it is standard (DyGLib, TGL) to *materialise* each query's context
once — this module performs that single replay, recording for every query:

* the k-recent neighbour ids, edge times, edge features, and edge weights;
* each neighbour's degree at edge time (for structural features);
* per-feature-process snapshots x_j(t(l)) of neighbour features at edge
  time, and x_i(t) of the target at query time (Eqs. 4-5 evolve features
  over time, so snapshots cannot be recovered after the fact).

The result, a :class:`ContextBundle`, is the common input to SLIM and every
context-based baseline, guaranteeing all methods see identical information.

Two recorder implementations produce byte-identical bundles:

* :class:`_BundleCollector` — the per-event reference, one Python callback
  per edge/query (kept as the equivalence oracle and generic fallback);
* :class:`_BatchedBundleCollector` — the production path.  It consumes
  array blocks from :func:`repro.streams.replay.replay_batched`, appending
  them to columnar *incidence logs* (two incidences per edge, one per
  endpoint), and defers all per-query work to one vectorised ``finalize``
  pass: degree tracking becomes a grouped cumulative count, the k-recent
  neighbour buffers become a ``searchsorted`` over the owner-sorted log,
  and feature snapshots become table gathers plus a compact log of the few
  evolving (unseen-node) vectors — no per-edge ``.copy()`` calls.  Only
  edges touching a non-static node (feature propagation, Eqs. 4-5) take a
  per-event detour, preserving bit-for-bit equality with the reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.features.base import FeatureProcess, OnlineFeatureStore
from repro.features.random_feat import StaticStore
from repro.features.structural import StructuralFeatureProcess, degree_encoding
from repro.streams.ctdg import CTDG
from repro.streams.degrees import DegreeTracker
from repro.streams.neighbors import NeighborEntry, RecentNeighborBuffer
from repro.streams.replay import replay, replay_batched
from repro.tasks.base import QuerySet


@dataclass
class ContextBundle:
    """Columnar per-query contexts over a full stream replay."""

    ctdg: CTDG
    queries: QuerySet
    k: int
    neighbor_nodes: np.ndarray  # (Q, k) int64, -1 where padded
    neighbor_times: np.ndarray  # (Q, k) float
    neighbor_degrees: np.ndarray  # (Q, k) int64: deg_j(t(l)) at edge time
    edge_features: np.ndarray  # (Q, k, d_e)
    edge_weights: np.ndarray  # (Q, k) float
    mask: np.ndarray  # (Q, k) bool, True where a neighbour entry exists
    target_degrees: np.ndarray  # (Q,) deg_i(t) at query time
    target_last_times: np.ndarray  # (Q,) time of target's latest edge (or query time)
    target_seen: np.ndarray  # (Q,) bool: target appeared during training period
    target_features: Dict[str, np.ndarray] = field(default_factory=dict)
    neighbor_features: Dict[str, np.ndarray] = field(default_factory=dict)
    structural_params: Dict[str, float] = field(default_factory=dict)
    static_tables: Dict[str, np.ndarray] = field(default_factory=dict)

    JOINT_NAME = "joint"

    # ------------------------------------------------------------------
    @property
    def num_queries(self) -> int:
        return len(self.queries)

    @property
    def edge_feature_dim(self) -> int:
        return int(self.edge_features.shape[2])

    @property
    def feature_names(self) -> List[str]:
        names = set(self.target_features) | set(self.static_tables)
        if self.structural_params:
            names.add("structural")
        return sorted(names)

    @property
    def splash_candidates(self) -> List[str]:
        """The SPLASH candidate processes present: {random, positional,
        structural} ∩ available."""
        wanted = ("random", "positional", "structural")
        return [name for name in wanted if name in self.feature_names]

    def feature_dim(self, name: str) -> int:
        if name in self.target_features:
            return int(self.target_features[name].shape[1])
        if name in self.static_tables:
            return int(self.static_tables[name].shape[1])
        if name == "structural" and self.structural_params:
            return int(self.structural_params["dim"])
        if name == self.JOINT_NAME:
            return sum(self.feature_dim(part) for part in self.splash_candidates)
        raise KeyError(f"no feature process {name!r} in this bundle")

    def get_target_features(
        self, name: str, idx: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """(Q, d_v) features of the target node at query time for process ``name``.

        Pass ``idx`` to restrict to a query subset (lazily computed
        structural/static features are then only produced for those rows).
        ``name`` may also be ``"joint"``: the concatenation of all SPLASH
        candidate processes (for the SLIM+Joint ablation).
        """
        if name == self.JOINT_NAME:
            return np.concatenate(
                [self.get_target_features(part, idx) for part in self.splash_candidates],
                axis=-1,
            )
        if name in self.target_features:
            table = self.target_features[name]
            return table if idx is None else table[idx]
        if name in self.static_tables:
            nodes = self.queries.nodes if idx is None else self.queries.nodes[idx]
            return self.static_tables[name][nodes]
        if name == "structural" and self.structural_params:
            degrees = self.target_degrees if idx is None else self.target_degrees[idx]
            return degree_encoding(
                degrees,
                int(self.structural_params["dim"]),
                self.structural_params["alpha"],
            )
        raise KeyError(f"no feature process {name!r} in this bundle")

    def get_neighbor_features(
        self, name: str, idx: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """(Q, k, d_v) features of each buffered neighbour at its edge time."""
        if name == self.JOINT_NAME:
            return np.concatenate(
                [
                    self.get_neighbor_features(part, idx)
                    for part in self.splash_candidates
                ],
                axis=-1,
            )
        if name in self.neighbor_features:
            table = self.neighbor_features[name]
            return table if idx is None else table[idx]
        if name in self.static_tables:
            nodes = self.neighbor_nodes if idx is None else self.neighbor_nodes[idx]
            mask = self.mask if idx is None else self.mask[idx]
            safe = np.maximum(nodes, 0)
            gathered = self.static_tables[name][safe]
            gathered[~mask] = 0.0
            return gathered
        if name == "structural" and self.structural_params:
            degrees = (
                self.neighbor_degrees if idx is None else self.neighbor_degrees[idx]
            )
            return degree_encoding(
                degrees,
                int(self.structural_params["dim"]),
                self.structural_params["alpha"],
            )
        raise KeyError(f"no feature process {name!r} in this bundle")

    def time_deltas(self, idx: Optional[np.ndarray] = None) -> np.ndarray:
        """(Q, k) non-negative gaps between query time and each edge time."""
        times = self.queries.times if idx is None else self.queries.times[idx]
        neighbor_times = self.neighbor_times if idx is None else self.neighbor_times[idx]
        mask = self.mask if idx is None else self.mask[idx]
        deltas = times[:, None] - neighbor_times
        deltas[~mask] = 0.0
        return np.maximum(deltas, 0.0)

    def neighbor_counts(self) -> np.ndarray:
        return self.mask.sum(axis=1)


class _QueryOutputs:
    """The bundle's per-query output arrays, shared by both collectors."""

    def __init__(
        self,
        num_queries: int,
        k: int,
        edge_feature_dim: int,
        stores: Dict[str, OnlineFeatureStore],
    ) -> None:
        q = num_queries
        self.neighbor_nodes = np.full((q, k), -1, dtype=np.int64)
        self.neighbor_times = np.zeros((q, k))
        self.neighbor_degrees = np.zeros((q, k), dtype=np.int64)
        self.edge_features = np.zeros((q, k, edge_feature_dim))
        self.edge_weights = np.zeros((q, k))
        self.mask = np.zeros((q, k), dtype=bool)
        self.target_degrees = np.zeros(q, dtype=np.int64)
        self.target_last_times = np.zeros(q)
        self.target_seen = np.zeros(q, dtype=bool)
        self.target_features = {
            name: np.zeros((q, store.dim)) for name, store in stores.items()
        }
        self.neighbor_features = {
            name: np.zeros((q, k, store.dim)) for name, store in stores.items()
        }


class _BundleCollector(_QueryOutputs):
    """Per-event stream processor that fills the bundle arrays during replay."""

    def __init__(
        self,
        num_queries: int,
        k: int,
        edge_feature_dim: int,
        stores: Dict[str, OnlineFeatureStore],
        seen_mask: Optional[np.ndarray],
    ) -> None:
        super().__init__(num_queries, k, edge_feature_dim, stores)
        self.k = k
        self.stores = stores
        self.seen_mask = seen_mask
        self.buffer = RecentNeighborBuffer(k)
        self.degrees = DegreeTracker()
        self._store_names = sorted(stores)

    # ------------------------------------------------------------------
    def on_edge(self, index, src, dst, time, feature, weight) -> None:
        # Degree and feature state become *inclusive* of this edge before
        # snapshotting (deg_i(t) counts edges with t(l) ≤ t, Eq. 2).
        self.degrees.observe_edge(src, dst)
        for name in self._store_names:
            self.stores[name].on_edge(index, src, dst, time, feature, weight)
        src_snap = tuple(
            self.stores[name].feature_of(src).copy() for name in self._store_names
        )
        dst_snap = tuple(
            self.stores[name].feature_of(dst).copy() for name in self._store_names
        )
        src_degree = self.degrees.degree(src)
        dst_degree = self.degrees.degree(dst)
        self.buffer.insert(
            src,
            NeighborEntry(
                neighbor=dst,
                time=time,
                edge_index=index,
                weight=weight,
                feature=feature,
                neighbor_degree=dst_degree,
                snapshot_features=dst_snap,
            ),
        )
        self.buffer.insert(
            dst,
            NeighborEntry(
                neighbor=src,
                time=time,
                edge_index=index,
                weight=weight,
                feature=feature,
                neighbor_degree=src_degree,
                snapshot_features=src_snap,
            ),
        )

    def on_query(self, index, node, time) -> None:
        entries = self.buffer.neighbors(node)
        self.target_degrees[index] = self.degrees.degree(node)
        self.target_last_times[index] = entries[-1].time if entries else time
        if self.seen_mask is not None and 0 <= node < len(self.seen_mask):
            self.target_seen[index] = self.seen_mask[node]
        for name in self._store_names:
            self.target_features[name][index] = self.stores[name].feature_of(node)
        for slot, entry in enumerate(entries):
            self.neighbor_nodes[index, slot] = entry.neighbor
            self.neighbor_times[index, slot] = entry.time
            self.neighbor_degrees[index, slot] = entry.neighbor_degree
            self.edge_weights[index, slot] = entry.weight
            self.mask[index, slot] = True
            if entry.feature is not None and self.edge_features.shape[2]:
                self.edge_features[index, slot] = entry.feature
            for pos, name in enumerate(self._store_names):
                self.neighbor_features[name][index, slot] = entry.snapshot_features[pos]


class _BatchedBundleCollector(_QueryOutputs):
    """Block stream processor that fills the bundle arrays columnar-ly.

    The replay phase only *appends*: edge blocks are retained as array views
    and queries record how much of the stream precedes them.  ``finalize``
    then reconstructs every query's context in a handful of vectorised
    passes (see the module docstring).  Non-static store updates — the only
    genuinely sequential part of the replay — run through the stores'
    per-event code for exactly the edges that need them, so results are
    bit-for-bit identical to :class:`_BundleCollector`.

    Stores must honour the static-node contract of
    :meth:`repro.features.base.OnlineFeatureStore.static_node_mask`,
    including its locality and zero-start assumptions (features change
    only on a node's own incident edges; untouched non-static nodes read
    as zeros).  A store returning ``None`` is handled within that contract
    by routing *every* edge through its per-event path; a store outside
    the contract entirely needs ``engine="event"``.
    """

    def __init__(
        self,
        num_queries: int,
        k: int,
        edge_feature_dim: int,
        stores: Dict[str, OnlineFeatureStore],
        seen_mask: Optional[np.ndarray],
        num_nodes: int,
        edge_features: Optional[np.ndarray],
    ) -> None:
        super().__init__(num_queries, k, edge_feature_dim, stores)
        self.k = k
        self.stores = stores
        self.seen_mask = seen_mask
        self.num_nodes = num_nodes
        self._edge_feature_table = edge_features
        self._store_names = sorted(stores)
        self._edge_blocks: List[Tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        self._query_blocks: List[Tuple[np.ndarray, np.ndarray, int]] = []
        self._edges_seen = 0

    # -- replay phase: append-only ------------------------------------
    def on_edge_block(self, start, stop, src, dst, times, features, weights) -> None:
        self._edge_blocks.append((start, src, dst, times, weights))
        self._edges_seen += stop - start

    def on_query_block(self, start, stop, nodes, times) -> None:
        # Two incidences per edge: the position marker doubles as the
        # "log length at query time" used by finalize's searchsorted.
        self._query_blocks.append((nodes, times, 2 * self._edges_seen))

    # -- helpers -------------------------------------------------------
    def _padded_mask(self, mask: Optional[np.ndarray]) -> np.ndarray:
        """Trim/zero-pad a store's static mask to the replay's id space."""
        cover = np.zeros(self.num_nodes, dtype=bool)
        if mask is not None:
            limit = min(len(mask), self.num_nodes)
            cover[:limit] = mask[:limit]
        return cover

    def _concat_edges(self):
        if not self._edge_blocks:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, np.zeros(0), np.zeros(0), empty
        src = np.concatenate([b[1] for b in self._edge_blocks])
        dst = np.concatenate([b[2] for b in self._edge_blocks])
        times = np.concatenate([b[3] for b in self._edge_blocks])
        weights = np.concatenate([b[4] for b in self._edge_blocks])
        edge_idx = np.concatenate(
            [np.arange(b[0], b[0] + len(b[1]), dtype=np.int64) for b in self._edge_blocks]
        )
        return src, dst, times, weights, edge_idx

    def _run_store_updates(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        times: np.ndarray,
        weights: np.ndarray,
        edge_idx: np.ndarray,
        static_all: np.ndarray,
        num_incidences: int,
    ):
        """Sequentially update stores on edges touching non-static nodes.

        Returns the per-incidence snapshot-log index (-1 where the
        neighbour's feature is a static table row) and one ``(L, dim)``
        snapshot log per store, holding the evolving vectors in the order
        they were recorded.
        """
        snap_idx = np.full(num_incidences, -1, dtype=np.int64)
        logs: Dict[str, List[np.ndarray]] = {name: [] for name in self._store_names}
        if not self._store_names or not len(src):
            return snap_idx, logs
        pure = static_all[src] & static_all[dst]
        log_len = 0
        features = self._edge_feature_table
        stores = self.stores
        for e in np.nonzero(~pure)[0]:
            s, d = int(src[e]), int(dst[e])
            time, weight = float(times[e]), float(weights[e])
            index = int(edge_idx[e])
            feature = features[index] if features is not None else None
            for name in self._store_names:
                stores[name].on_edge(index, s, d, time, feature, weight)
            # Post-edge snapshots, mirroring the per-event collector: the
            # dst snapshot lands on src's incidence (position 2e) and vice
            # versa.  Static endpoints need no log — their snapshot is a
            # table row.
            for endpoint, position in ((d, 2 * e), (s, 2 * e + 1)):
                if not static_all[endpoint]:
                    snap_idx[position] = log_len
                    for name in self._store_names:
                        logs[name].append(stores[name].feature_of(endpoint).copy())
                    log_len += 1
        return snap_idx, logs

    # -- assembly ------------------------------------------------------
    def finalize(self) -> None:
        """Materialise all recorded queries from the incidence logs."""
        src, dst, times_e, weights_e, edge_idx = self._concat_edges()
        num_edges = len(src)
        num_inc = 2 * num_edges

        # Interleaved incidence log: position 2e is src's view of edge e
        # (neighbour = dst), position 2e+1 is dst's view.  Concatenation
        # order equals stream order, so positions are a time axis.
        owner = np.empty(num_inc, dtype=np.int64)
        nbr = np.empty(num_inc, dtype=np.int64)
        owner[0::2], owner[1::2] = src, dst
        nbr[0::2], nbr[1::2] = dst, src
        inc_time = np.repeat(times_e, 2)
        inc_weight = np.repeat(weights_e, 2)
        inc_edge = np.repeat(edge_idx, 2)

        # Owner-sorted view of the log (stable ⇒ ascending position within
        # each owner).  ``incl[p]`` = #incidences of owner[p] at positions
        # ≤ p, i.e. the owner's degree right after its p-th event.
        order = np.argsort(owner, kind="stable")
        incl = np.empty(num_inc, dtype=np.int64)
        if num_inc:
            sorted_owner = owner[order]
            run_start = np.empty(num_inc, dtype=bool)
            run_start[0] = True
            run_start[1:] = sorted_owner[1:] != sorted_owner[:-1]
            group_first = np.nonzero(run_start)[0]
            group_id = np.cumsum(run_start) - 1
            incl[order] = np.arange(num_inc) - group_first[group_id] + 1

        # deg of the *neighbour* at edge time (Eq. 2, inclusive of this
        # edge): the neighbour's own incidence is the partner position
        # p ^ 1, except for a self-loop's dst-side view where the last
        # occurrence is position p itself.
        if num_inc:
            partner = np.arange(num_inc) ^ 1
            nbr_deg = incl[partner]
            odd = np.arange(num_inc) % 2 == 1
            selfloop = owner == nbr
            nbr_deg[selfloop & odd] = incl[selfloop & odd]
        else:
            nbr_deg = np.zeros(0, dtype=np.int64)

        # Static-node mask shared by all stores: an edge between two
        # all-static endpoints cannot change any store's state.
        if self._store_names:
            static_all = np.ones(self.num_nodes, dtype=bool)
            for name in self._store_names:
                static_all &= self._padded_mask(self.stores[name].static_node_mask())
        else:
            static_all = np.ones(self.num_nodes, dtype=bool)

        snap_idx, raw_logs = self._run_store_updates(
            src, dst, times_e, weights_e, edge_idx, static_all, num_inc
        )
        snap_logs = {
            name: (
                np.asarray(raw_logs[name])
                if raw_logs[name]
                else np.zeros((0, self.stores[name].dim))
            )
            for name in self._store_names
        }

        # Queries, concatenated in stream order (a prefix when stop_time
        # truncated the replay).
        if not self._query_blocks:
            return
        q_nodes = np.concatenate([b[0] for b in self._query_blocks])
        q_times = np.concatenate([b[1] for b in self._query_blocks])
        q_cut = np.repeat(
            np.array([b[2] for b in self._query_blocks], dtype=np.int64),
            np.array([len(b[0]) for b in self._query_blocks]),
        )
        num_q = len(q_nodes)
        if num_q == 0:
            return

        k = self.k
        node_valid = (q_nodes >= 0) & (q_nodes < self.num_nodes)
        q_safe = np.where(node_valid, q_nodes, 0)

        # Segmented searchsorted via a combined (owner, position) key; the
        # key is strictly increasing in the owner-sorted log.
        stride = num_inc + 1
        if self.num_nodes and self.num_nodes > (2**62) // stride:
            raise OverflowError(
                "stream too large for the batched context engine; "
                "use build_context_bundle(..., engine='event')"
            )
        key_sorted = owner[order] * stride + order if num_inc else np.zeros(0, dtype=np.int64)
        pos = np.searchsorted(key_sorted, q_safe * stride + q_cut, side="left")
        base = np.searchsorted(key_sorted, q_safe * stride, side="left")
        degrees = np.where(node_valid, pos - base, 0)
        self.target_degrees[:num_q] = degrees

        counts = np.minimum(degrees, k)
        has_any = counts > 0
        slots = np.arange(k)[None, :]
        valid = slots < counts[:, None]
        take = np.where(valid, (pos - counts)[:, None] + slots, 0)
        last = np.where(has_any, pos - 1, 0)
        if num_inc:
            inc = order[take]  # (Q, k) incidence positions, oldest → newest
            last_inc = order[last]
        else:
            inc = np.zeros((num_q, k), dtype=np.int64)
            last_inc = np.zeros(num_q, dtype=np.int64)

        self.mask[:num_q] = valid
        if num_inc:
            self.neighbor_nodes[:num_q] = np.where(valid, nbr[inc], -1)
            self.neighbor_times[:num_q] = np.where(valid, inc_time[inc], 0.0)
            self.neighbor_degrees[:num_q] = np.where(valid, nbr_deg[inc], 0)
            self.edge_weights[:num_q] = np.where(valid, inc_weight[inc], 0.0)
            if self._edge_feature_table is not None and self.edge_features.shape[2]:
                # Gather straight into the output block: fancy indexing would
                # materialise (and fault in) an extra (Q, k, d_e) temporary.
                out = self.edge_features[:num_q]
                np.take(
                    self._edge_feature_table,
                    np.where(valid, inc_edge[inc], 0),
                    axis=0,
                    out=out,
                )
                out[~valid] = 0.0
            self.target_last_times[:num_q] = np.where(
                has_any, inc_time[last_inc], q_times
            )
        else:
            self.target_last_times[:num_q] = q_times

        if self.seen_mask is not None:
            in_range = (q_nodes >= 0) & (q_nodes < len(self.seen_mask))
            seen = np.zeros(num_q, dtype=bool)
            seen[in_range] = self.seen_mask[q_nodes[in_range]]
            self.target_seen[:num_q] = seen

        # Feature snapshots: static table gathers overridden by the
        # evolving-vector log where the node was non-static.
        slot_snap = np.where(valid, snap_idx[inc], -1) if num_inc else np.full((num_q, k), -1)
        dynamic_slot = slot_snap >= 0
        if num_inc:
            # The owner's own post-edge snapshot lives on the partner
            # incidence of the same edge.
            target_snap = np.where(has_any, snap_idx[last_inc ^ 1], -1)
        else:
            target_snap = np.full(num_q, -1, dtype=np.int64)

        any_dynamic = dynamic_slot.any()
        for name in self._store_names:
            store = self.stores[name]
            table = store.snapshot_table()
            log = snap_logs[name]
            own_static = self._padded_mask(store.static_node_mask())

            gathered = self.neighbor_features[name][:num_q]
            if table is not None and len(table) and num_inc:
                safe_nbr = np.clip(np.where(valid, nbr[inc], 0), 0, len(table) - 1)
                np.take(table, safe_nbr, axis=0, out=gathered)
                gathered[~valid] = 0.0
            if any_dynamic:
                gathered[dynamic_slot] = log[slot_snap[dynamic_slot]]

            target = self.target_features[name][:num_q]
            static_rows = node_valid & own_static[q_safe]
            if table is not None and len(table) and static_rows.any():
                target[static_rows] = table[
                    np.clip(q_nodes[static_rows], 0, len(table) - 1)
                ]
            evolving = ~static_rows & (target_snap >= 0)
            if evolving.any():
                target[evolving] = log[target_snap[evolving]]


def build_context_bundle(
    ctdg: CTDG,
    queries: QuerySet,
    k: int,
    processes: Sequence[FeatureProcess] = (),
    engine: str = "batched",
) -> ContextBundle:
    """Replay ``ctdg`` once and materialise contexts for every query.

    ``processes`` must already be fitted (their seen-node features learned on
    the training prefix).  Structural processes are handled lazily — only
    degrees are stored, and φ_d is applied on access — because their features
    are a pure function of degree.

    ``engine`` selects the replay implementation: ``"batched"`` (default)
    uses the vectorised block engine, ``"event"`` the per-event reference.
    They produce bit-identical bundles for every store honouring the
    :meth:`~repro.features.base.OnlineFeatureStore.static_node_mask`
    contract (including its zero-start assumption for untouched non-static
    nodes — all in-repo stores qualify); a store outside that contract
    must be materialised with ``engine="event"``, which also serves as the
    oracle for equivalence tests.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if engine not in ("batched", "event"):
        raise ValueError(f"unknown context engine {engine!r}; use 'batched' or 'event'")
    stores: Dict[str, OnlineFeatureStore] = {}
    structural_params: Dict[str, float] = {}
    static_tables: Dict[str, np.ndarray] = {}
    seen_mask: Optional[np.ndarray] = None
    for process in processes:
        if not process.is_fitted():
            raise RuntimeError(f"feature process {process.name!r} is not fitted")
        seen_mask = process.seen_mask
        if isinstance(process, StructuralFeatureProcess):
            structural_params = {"dim": float(process.dim), "alpha": process.alpha}
            continue
        store = process.make_store()
        if isinstance(store, StaticStore):
            # Static features never change, so x_j(t(l)) == table[j]; gather
            # lazily from the table instead of storing (Q, k, d_v) snapshots.
            static_tables[process.name] = store.table
            continue
        stores[process.name] = store

    if engine == "batched":
        collector = _BatchedBundleCollector(
            num_queries=len(queries),
            k=k,
            edge_feature_dim=ctdg.edge_feature_dim,
            stores=stores,
            seen_mask=seen_mask,
            num_nodes=ctdg.num_nodes,
            edge_features=ctdg.edge_features,
        )
        replay_batched(ctdg, queries.nodes, queries.times, [collector])
        collector.finalize()
    else:
        collector = _BundleCollector(
            num_queries=len(queries),
            k=k,
            edge_feature_dim=ctdg.edge_feature_dim,
            stores=stores,
            seen_mask=seen_mask,
        )
        replay(ctdg, queries.nodes, queries.times, [collector])
    return ContextBundle(
        ctdg=ctdg,
        queries=queries,
        k=k,
        neighbor_nodes=collector.neighbor_nodes,
        neighbor_times=collector.neighbor_times,
        neighbor_degrees=collector.neighbor_degrees,
        edge_features=collector.edge_features,
        edge_weights=collector.edge_weights,
        mask=collector.mask,
        target_degrees=collector.target_degrees,
        target_last_times=collector.target_last_times,
        target_seen=collector.target_seen,
        target_features=collector.target_features,
        neighbor_features=collector.neighbor_features,
        structural_params=structural_params,
        static_tables=static_tables,
    )
