"""Materialised query contexts: one chronological replay, many model runs.

TGNNs make predictions at query time from the k most recent temporal edges
of the target node (Eq. 6) plus streaming feature state.  For epoch-based
training it is standard (DyGLib, TGL) to *materialise* each query's context
once — this module performs that single replay, recording for every query:

* the k-recent neighbour ids, edge times, edge features, and edge weights;
* each neighbour's degree at edge time (for structural features);
* per-feature-process snapshots x_j(t(l)) of neighbour features at edge
  time, and x_i(t) of the target at query time (Eqs. 4-5 evolve features
  over time, so snapshots cannot be recovered after the fact).

The result, a :class:`ContextBundle`, is the common input to SLIM and every
context-based baseline, guaranteeing all methods see identical information.

Two recorder implementations produce byte-identical bundles:

* :class:`_BundleCollector` — the per-event reference, one Python callback
  per edge/query (kept as the equivalence oracle and generic fallback);
* :class:`_BatchedBundleCollector` — the production path.  It consumes
  array blocks from :func:`repro.streams.replay.replay_batched`, appending
  them to columnar *incidence logs* (two incidences per edge, one per
  endpoint), and defers all per-query work to one vectorised ``finalize``
  pass: degree tracking becomes a grouped cumulative count, the k-recent
  neighbour buffers become a ``searchsorted`` over the owner-sorted log,
  and feature snapshots become table gathers plus a compact log of the few
  evolving (unseen-node) vectors — no per-edge ``.copy()`` calls.  Only
  edges touching a non-static node (feature propagation, Eqs. 4-5) run
  through the sequential store pass — itself vectorised by the blocked
  propagation mode (``propagation="blocked"``, the default), which
  scatter-updates maximal endpoint-disjoint runs planned by
  :func:`repro.streams.replay.plan_update_blocks` and fills preallocated
  snapshot logs, bit-for-bit equal to the per-event reference (see
  DESIGN.md §3).

A third engine, ``engine="sharded"``, partitions the precomputed
edge/query interleave (:func:`repro.streams.replay.plan_shards`) into
contiguous time-window shards and runs the batched collection *per shard*,
optionally in worker processes.  Each shard is collected against only its
own incidence log; a sequential merge pass then stitches the shards
together, carrying three pieces of state across every shard boundary:

* per-node **degree offsets** (incidence counts accumulated by earlier
  shards), which turn shard-local degrees into the global deg_i(t);
* per-node **k-recent tails** (the last ≤ k incidences each node produced
  in earlier shards), which fill query slots the local shard cannot; and
* the **evolving unseen-node feature state** — the genuinely sequential
  propagation of Eqs. 4-5 — which runs once over the full stream in the
  parent (overlapped with the workers) and is spliced in by snapshot-log
  index exactly as the batched engine does.

The result is bit-for-bit identical to both other engines (see
DESIGN.md §3 and ``tests/streams/test_engine_equivalence.py``).
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.features.base import FeatureProcess, OnlineFeatureStore
from repro.features.random_feat import StaticStore
from repro.nn.backend import active_backend
from repro.features.structural import StructuralFeatureProcess, degree_encoding
from repro.streams.ctdg import CTDG
from repro.streams.degrees import DegreeTracker
from repro.streams.neighbors import NeighborEntry, RecentNeighborBuffer
from repro.streams.replay import (
    endpoint_shard,
    interleave_cuts,
    plan_shards,
    plan_update_blocks,
    replay,
    replay_batched,
)
from repro.tasks.base import QuerySet


# Runs shorter than this take the per-event path inside the blocked
# propagation pass: below it, numpy dispatch overhead outweighs the
# vectorisation gain (hub-dominated conflict regions produce many 1-3 edge
# runs; measured crossover ~8 on the email-eu-like stream).  Shared by the
# offline collectors and the serving ingest.
_MIN_VECTOR_RUN = 8


@dataclass
class ContextBundle:
    """Columnar per-query contexts over a full stream replay."""

    ctdg: CTDG
    queries: QuerySet
    k: int
    neighbor_nodes: np.ndarray  # (Q, k) int64, -1 where padded
    neighbor_times: np.ndarray  # (Q, k) float
    neighbor_degrees: np.ndarray  # (Q, k) int64: deg_j(t(l)) at edge time
    edge_features: np.ndarray  # (Q, k, d_e)
    edge_weights: np.ndarray  # (Q, k) float
    mask: np.ndarray  # (Q, k) bool, True where a neighbour entry exists
    target_degrees: np.ndarray  # (Q,) deg_i(t) at query time
    target_last_times: np.ndarray  # (Q,) time of target's latest edge (or query time)
    target_seen: np.ndarray  # (Q,) bool: target appeared during training period
    target_features: Dict[str, np.ndarray] = field(default_factory=dict)
    neighbor_features: Dict[str, np.ndarray] = field(default_factory=dict)
    structural_params: Dict[str, float] = field(default_factory=dict)
    static_tables: Dict[str, np.ndarray] = field(default_factory=dict)

    JOINT_NAME = "joint"

    # ------------------------------------------------------------------
    @property
    def num_queries(self) -> int:
        return len(self.queries)

    @property
    def edge_feature_dim(self) -> int:
        return int(self.edge_features.shape[2])

    @property
    def feature_names(self) -> List[str]:
        names = set(self.target_features) | set(self.static_tables)
        if self.structural_params:
            names.add("structural")
        return sorted(names)

    @property
    def splash_candidates(self) -> List[str]:
        """The SPLASH candidate processes present: {random, positional,
        structural} ∩ available."""
        wanted = ("random", "positional", "structural")
        return [name for name in wanted if name in self.feature_names]

    def feature_dim(self, name: str) -> int:
        if name in self.target_features:
            return int(self.target_features[name].shape[1])
        if name in self.static_tables:
            return int(self.static_tables[name].shape[1])
        if name == "structural" and self.structural_params:
            return int(self.structural_params["dim"])
        if name == self.JOINT_NAME:
            return sum(self.feature_dim(part) for part in self.splash_candidates)
        raise KeyError(f"no feature process {name!r} in this bundle")

    def get_target_features(
        self, name: str, idx: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """(Q, d_v) features of the target node at query time for process ``name``.

        Pass ``idx`` to restrict to a query subset (lazily computed
        structural/static features are then only produced for those rows).
        ``name`` may also be ``"joint"``: the concatenation of all SPLASH
        candidate processes (for the SLIM+Joint ablation).
        """
        if name == self.JOINT_NAME:
            return np.concatenate(
                [
                    self.get_target_features(part, idx)
                    for part in self.splash_candidates
                ],
                axis=-1,
            )
        if name in self.target_features:
            table = self.target_features[name]
            return table if idx is None else table[idx]
        if name in self.static_tables:
            nodes = self.queries.nodes if idx is None else self.queries.nodes[idx]
            return self.static_tables[name][nodes]
        if name == "structural" and self.structural_params:
            degrees = self.target_degrees if idx is None else self.target_degrees[idx]
            return degree_encoding(
                degrees,
                int(self.structural_params["dim"]),
                self.structural_params["alpha"],
            )
        raise KeyError(f"no feature process {name!r} in this bundle")

    def get_neighbor_features(
        self, name: str, idx: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """(Q, k, d_v) features of each buffered neighbour at its edge time."""
        if name == self.JOINT_NAME:
            return np.concatenate(
                [
                    self.get_neighbor_features(part, idx)
                    for part in self.splash_candidates
                ],
                axis=-1,
            )
        if name in self.neighbor_features:
            table = self.neighbor_features[name]
            return table if idx is None else table[idx]
        if name in self.static_tables:
            nodes = self.neighbor_nodes if idx is None else self.neighbor_nodes[idx]
            mask = self.mask if idx is None else self.mask[idx]
            safe = np.maximum(nodes, 0)
            gathered = self.static_tables[name][safe]
            gathered[~mask] = 0.0
            return gathered
        if name == "structural" and self.structural_params:
            degrees = (
                self.neighbor_degrees if idx is None else self.neighbor_degrees[idx]
            )
            return degree_encoding(
                degrees,
                int(self.structural_params["dim"]),
                self.structural_params["alpha"],
            )
        raise KeyError(f"no feature process {name!r} in this bundle")

    def time_deltas(self, idx: Optional[np.ndarray] = None) -> np.ndarray:
        """(Q, k) non-negative gaps between query time and each edge time."""
        times = self.queries.times if idx is None else self.queries.times[idx]
        neighbor_times = (
            self.neighbor_times if idx is None else self.neighbor_times[idx]
        )
        mask = self.mask if idx is None else self.mask[idx]
        deltas = times[:, None] - neighbor_times
        deltas[~mask] = 0.0
        return np.maximum(deltas, 0.0)

    def neighbor_counts(self) -> np.ndarray:
        return self.mask.sum(axis=1)


class _QueryOutputs:
    """The bundle's per-query output arrays, shared by both collectors."""

    def __init__(
        self,
        num_queries: int,
        k: int,
        edge_feature_dim: int,
        stores: Dict[str, OnlineFeatureStore],
    ) -> None:
        q = num_queries
        self.neighbor_nodes = np.full((q, k), -1, dtype=np.int64)
        self.neighbor_times = np.zeros((q, k))
        self.neighbor_degrees = np.zeros((q, k), dtype=np.int64)
        self.edge_features = np.zeros((q, k, edge_feature_dim))
        self.edge_weights = np.zeros((q, k))
        self.mask = np.zeros((q, k), dtype=bool)
        self.target_degrees = np.zeros(q, dtype=np.int64)
        self.target_last_times = np.zeros(q)
        self.target_seen = np.zeros(q, dtype=bool)
        self.target_features = {
            name: np.zeros((q, store.dim)) for name, store in stores.items()
        }
        self.neighbor_features = {
            name: np.zeros((q, k, store.dim)) for name, store in stores.items()
        }


class ReplayState:
    """The online state of a chronological replay, and its update rules.

    One edge advances degrees (Eq. 2), the feature stores (Eqs. 4-5), and
    the k-recent neighbour buffers (Eq. 6) — in that order, so snapshots
    taken after the update are *inclusive* of the edge.  One query reads a
    row of context from that state.  This is the single state-update core
    shared by the per-event offline collector (:class:`_BundleCollector`)
    and the serving layer's live store
    (:class:`repro.serving.IncrementalContextStore`): both produce
    bit-for-bit identical context because both execute exactly this code.
    """

    def __init__(
        self,
        k: int,
        stores: Dict[str, OnlineFeatureStore],
        owner: Optional[Tuple[int, int]] = None,
        owner_mask: Optional[np.ndarray] = None,
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.stores = stores
        self.store_names = sorted(stores)
        self.buffer = RecentNeighborBuffer(k)
        self.degrees = DegreeTracker()
        # Fleet sharding (repro.serving.fleet): with an owner spec, the
        # *global* state — degrees and feature-store propagation, which any
        # node's context may transitively depend on — still advances past
        # every edge, but the per-endpoint context assembly (snapshot
        # copies + k-recent buffer inserts, the dominant ingest cost) runs
        # only for endpoints this shard owns.  Owned nodes' contexts stay
        # bit-for-bit what an unpartitioned replay produces; non-owned
        # nodes simply have no buffer here.
        self.owner = owner
        self._owner_mask = owner_mask

    # ------------------------------------------------------------------
    def owns(self, node: int) -> bool:
        """Whether this state assembles context for ``node`` (always true
        without an owner spec)."""
        if self.owner is None:
            return True
        mask = self._owner_mask
        if mask is not None and 0 <= node < len(mask):
            return bool(mask[node])
        return endpoint_shard(node, self.owner[1]) == self.owner[0]

    def _owns_array(self, nodes: np.ndarray) -> Optional[np.ndarray]:
        """Vectorised :meth:`owns` (None means "owns everything")."""
        if self.owner is None:
            return None
        mask = self._owner_mask
        nodes = np.asarray(nodes, dtype=np.int64)
        if mask is not None:
            in_range = (nodes >= 0) & (nodes < len(mask))
            if in_range.all():
                return mask[nodes]
            out = np.empty(len(nodes), dtype=bool)
            out[in_range] = mask[nodes[in_range]]
        else:
            in_range = np.zeros(len(nodes), dtype=bool)
            out = np.empty(len(nodes), dtype=bool)
        overflow = ~in_range
        out[overflow] = (
            endpoint_shard(nodes[overflow], self.owner[1]) == self.owner[0]
        )
        return out

    # ------------------------------------------------------------------
    def apply_edge(self, index, src, dst, time, feature, weight) -> None:
        """Advance the state past one temporal edge."""
        # Degree and feature state become *inclusive* of this edge before
        # snapshotting (deg_i(t) counts edges with t(l) ≤ t, Eq. 2).
        self.degrees.observe_edge(src, dst)
        for name in self.store_names:
            self.stores[name].on_edge(index, src, dst, time, feature, weight)
        # The entry buffered for an endpoint snapshots the *other*
        # endpoint's state, so each snapshot is needed exactly when the
        # node it will be buffered under is owned.
        own_src = self.owner is None or self.owns(src)
        own_dst = self.owner is None or self.owns(dst)
        if own_src:
            dst_snap = tuple(
                self.stores[name].feature_of(dst).copy()
                for name in self.store_names
            )
            self.buffer.insert(
                src,
                NeighborEntry(
                    neighbor=dst,
                    time=time,
                    edge_index=index,
                    weight=weight,
                    feature=feature,
                    neighbor_degree=self.degrees.degree(dst),
                    snapshot_features=dst_snap,
                ),
            )
        if own_dst:
            src_snap = tuple(
                self.stores[name].feature_of(src).copy()
                for name in self.store_names
            )
            self.buffer.insert(
                dst,
                NeighborEntry(
                    neighbor=src,
                    time=time,
                    edge_index=index,
                    weight=weight,
                    feature=feature,
                    neighbor_degree=self.degrees.degree(src),
                    snapshot_features=src_snap,
                ),
            )

    def apply_edge_block(
        self,
        indices: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        times: np.ndarray,
        features: Optional[np.ndarray],
        weights: np.ndarray,
    ) -> None:
        """Advance past one *endpoint-disjoint* run of edges.

        Callers must guarantee the run invariant of
        :func:`repro.streams.replay.plan_update_blocks` — no two distinct
        edges of the run share a node.  Degrees, store state and buffered
        snapshots then come out bit-for-bit identical to calling
        :meth:`apply_edge` per event, but the store updates and the
        post-edge snapshot reads run as one vectorised pass per run: a
        node's post-edge state *is* its post-run state, because no other
        edge of the run touches it (a self-loop is one edge, whose two
        touches both happen inside the stores' own block update).
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        count = len(src)
        self.degrees.observe_edges(src, dst)
        for name in self.store_names:
            self.stores[name].on_edge_block(indices, src, dst, times, features, weights)
        both = np.concatenate([src, dst])
        snaps = [self.stores[name].features_of(both) for name in self.store_names]
        both_deg = self.degrees.degrees_of(both)
        own_src = self._owns_array(src)
        own_dst = self._owns_array(dst)
        insert = self.buffer.insert
        if own_src is None:
            active = range(count)
        else:
            # An offset with no owned endpoint buffers nothing here; skip
            # its loop iteration entirely so a shard's per-event cost
            # tracks its owned share of the stream, not the full stream.
            active = np.nonzero(own_src | own_dst)[0]
        for offset in active:
            feature = features[offset] if features is not None else None
            s, d = int(src[offset]), int(dst[offset])
            time = float(times[offset])
            weight = float(weights[offset])
            index = int(indices[offset])
            if own_src is None or own_src[offset]:
                insert(
                    s,
                    NeighborEntry(
                        neighbor=d,
                        time=time,
                        edge_index=index,
                        weight=weight,
                        feature=feature,
                        neighbor_degree=int(both_deg[count + offset]),
                        # Copy: a view would pin the whole per-run gather
                        # matrix for as long as this entry stays buffered.
                        snapshot_features=tuple(
                            snap[count + offset].copy() for snap in snaps
                        ),
                    ),
                )
            if own_dst is None or own_dst[offset]:
                insert(
                    d,
                    NeighborEntry(
                        neighbor=s,
                        time=time,
                        edge_index=index,
                        weight=weight,
                        feature=feature,
                        neighbor_degree=int(both_deg[offset]),
                        snapshot_features=tuple(snap[offset].copy() for snap in snaps),
                    ),
                )

    def write_query(
        self,
        out: "_QueryOutputs",
        row: int,
        node: int,
        time: float,
        seen_mask: Optional[np.ndarray],
    ) -> None:
        """Materialise one query's context into row ``row`` of ``out``."""
        if self.owner is not None and not self.owns(node):
            raise ValueError(
                f"node {node} is not owned by shard {self.owner[0]} of "
                f"{self.owner[1]}; route the query to its owner shard"
            )
        entries = self.buffer.neighbors(node)
        out.target_degrees[row] = self.degrees.degree(node)
        out.target_last_times[row] = entries[-1].time if entries else time
        if seen_mask is not None and 0 <= node < len(seen_mask):
            out.target_seen[row] = seen_mask[node]
        for name in self.store_names:
            out.target_features[name][row] = self.stores[name].feature_of(node)
        for slot, entry in enumerate(entries):
            out.neighbor_nodes[row, slot] = entry.neighbor
            out.neighbor_times[row, slot] = entry.time
            out.neighbor_degrees[row, slot] = entry.neighbor_degree
            out.edge_weights[row, slot] = entry.weight
            out.mask[row, slot] = True
            if entry.feature is not None and out.edge_features.shape[2]:
                out.edge_features[row, slot] = entry.feature
            for pos, name in enumerate(self.store_names):
                out.neighbor_features[name][row, slot] = entry.snapshot_features[pos]


class _BundleCollector(_QueryOutputs):
    """Per-event stream processor that fills the bundle arrays during replay."""

    def __init__(
        self,
        num_queries: int,
        k: int,
        edge_feature_dim: int,
        stores: Dict[str, OnlineFeatureStore],
        seen_mask: Optional[np.ndarray],
    ) -> None:
        super().__init__(num_queries, k, edge_feature_dim, stores)
        self.k = k
        self.stores = stores
        self.seen_mask = seen_mask
        self.state = ReplayState(k, stores)

    # ------------------------------------------------------------------
    def on_edge(self, index, src, dst, time, feature, weight) -> None:
        self.state.apply_edge(index, src, dst, time, feature, weight)

    def on_query(self, index, node, time) -> None:
        self.state.write_query(self, index, node, time, self.seen_mask)


class _BatchedBundleCollector(_QueryOutputs):
    """Block stream processor that fills the bundle arrays columnar-ly.

    The replay phase only *appends*: edge blocks are retained as array views
    and queries record how much of the stream precedes them.  ``finalize``
    then reconstructs every query's context in a handful of vectorised
    passes (see the module docstring).  Non-static store updates — the only
    genuinely sequential part of the replay — run through the stores'
    per-event code for exactly the edges that need them, so results are
    bit-for-bit identical to :class:`_BundleCollector`.

    Stores must honour the static-node contract of
    :meth:`repro.features.base.OnlineFeatureStore.static_node_mask`,
    including its locality and zero-start assumptions (features change
    only on a node's own incident edges; untouched non-static nodes read
    as zeros).  A store returning ``None`` is handled within that contract
    by routing *every* edge through its per-event path; a store outside
    the contract entirely needs ``engine="event"``.
    """

    def __init__(
        self,
        num_queries: int,
        k: int,
        edge_feature_dim: int,
        stores: Dict[str, OnlineFeatureStore],
        seen_mask: Optional[np.ndarray],
        num_nodes: int,
        edge_features: Optional[np.ndarray],
        propagation: str = "blocked",
    ) -> None:
        super().__init__(num_queries, k, edge_feature_dim, stores)
        self.k = k
        self.stores = stores
        self.seen_mask = seen_mask
        self.num_nodes = num_nodes
        self.propagation = propagation
        self._edge_feature_table = edge_features
        self._store_names = sorted(stores)
        self._edge_blocks: List[
            Tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = []
        self._query_blocks: List[Tuple[np.ndarray, np.ndarray, int]] = []
        self._edges_seen = 0

    # -- replay phase: append-only ------------------------------------
    def on_edge_block(self, start, stop, src, dst, times, features, weights) -> None:
        self._edge_blocks.append((start, src, dst, times, weights))
        self._edges_seen += stop - start

    def on_query_block(self, start, stop, nodes, times) -> None:
        # Two incidences per edge: the position marker doubles as the
        # "log length at query time" used by finalize's searchsorted.
        self._query_blocks.append((nodes, times, 2 * self._edges_seen))

    # -- helpers -------------------------------------------------------
    def _padded_mask(self, mask: Optional[np.ndarray]) -> np.ndarray:
        """Trim/zero-pad a store's static mask to the replay's id space."""
        cover = np.zeros(self.num_nodes, dtype=bool)
        if mask is not None:
            limit = min(len(mask), self.num_nodes)
            cover[:limit] = mask[:limit]
        return cover

    def _concat_edges(self):
        if not self._edge_blocks:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, np.zeros(0), np.zeros(0), empty
        src = np.concatenate([b[1] for b in self._edge_blocks])
        dst = np.concatenate([b[2] for b in self._edge_blocks])
        times = np.concatenate([b[3] for b in self._edge_blocks])
        weights = np.concatenate([b[4] for b in self._edge_blocks])
        edge_idx = np.concatenate(
            [
                np.arange(b[0], b[0] + len(b[1]), dtype=np.int64)
                for b in self._edge_blocks
            ]
        )
        return src, dst, times, weights, edge_idx

    def _run_store_updates(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        times: np.ndarray,
        weights: np.ndarray,
        edge_idx: np.ndarray,
        static_all: np.ndarray,
        num_incidences: int,
    ):
        """Sequentially update stores on edges touching non-static nodes.

        Returns the per-incidence snapshot-log index (-1 where the
        neighbour's feature is a static table row) and one ``(L, dim)``
        snapshot log per store, holding the evolving vectors in the order
        they were recorded.
        """
        snap_idx = np.full(num_incidences, -1, dtype=np.int64)
        logs: Dict[str, List[np.ndarray]] = {name: [] for name in self._store_names}
        if not self._store_names or not len(src):
            return snap_idx, logs
        pure = static_all[src] & static_all[dst]
        log_len = 0
        features = self._edge_feature_table
        stores = self.stores
        for e in np.nonzero(~pure)[0]:
            s, d = int(src[e]), int(dst[e])
            time, weight = float(times[e]), float(weights[e])
            index = int(edge_idx[e])
            feature = features[index] if features is not None else None
            for name in self._store_names:
                stores[name].on_edge(index, s, d, time, feature, weight)
            # Post-edge snapshots, mirroring the per-event collector: the
            # dst snapshot lands on src's incidence (position 2e) and vice
            # versa.  Static endpoints need no log — their snapshot is a
            # table row.
            for endpoint, position in ((d, 2 * e), (s, 2 * e + 1)):
                if not static_all[endpoint]:
                    snap_idx[position] = log_len
                    for name in self._store_names:
                        logs[name].append(stores[name].feature_of(endpoint).copy())
                    log_len += 1
        return snap_idx, logs

    def _run_store_updates_blocked(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        times: np.ndarray,
        weights: np.ndarray,
        edge_idx: np.ndarray,
        static_all: np.ndarray,
        num_incidences: int,
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Block-scatter variant of :meth:`_run_store_updates`.

        The non-static-edge subsequence is partitioned into maximal
        endpoint-disjoint runs (:func:`repro.streams.replay.plan_update_blocks`);
        each run advances every store with one vectorised
        :meth:`~repro.features.base.OnlineFeatureStore.on_edge_block` call,
        and the post-edge snapshots of the run land in *preallocated* logs
        via one :meth:`~repro.features.base.OnlineFeatureStore.features_of`
        gather — no per-event ``on_edge`` calls, no ``.copy()`` appends.
        Endpoint-disjointness makes a node's post-edge state equal its
        post-run state, and the log layout (per edge: dst snapshot first,
        then src, in stream order) is precomputed from the static mask, so
        ``snap_idx`` and the log contents are bit-for-bit those of the
        per-event reference.
        """
        snap_idx = np.full(num_incidences, -1, dtype=np.int64)
        names = self._store_names
        empty_logs = {name: np.zeros((0, self.stores[name].dim)) for name in names}
        if not names or not len(src):
            return snap_idx, empty_logs
        pure = static_all[src] & static_all[dst]
        rows = np.nonzero(~pure)[0]
        if not len(rows):
            return snap_idx, empty_logs
        b_src = src[rows]
        b_dst = dst[rows]
        b_times = times[rows]
        b_weights = weights[rows]
        b_idx = edge_idx[rows]
        features = self._edge_feature_table
        b_feat = features[b_idx] if features is not None else None

        # Interleaved log plan: entry 2r is edge r's dst snapshot (incidence
        # position 2e), entry 2r+1 its src snapshot (2e+1); static endpoints
        # produce no entry.  Log rows are the running count of kept entries.
        count = len(rows)
        kept = np.empty(2 * count, dtype=bool)
        kept[0::2] = ~static_all[b_dst]
        kept[1::2] = ~static_all[b_src]
        log_rows = np.cumsum(kept) - 1
        positions = np.empty(2 * count, dtype=np.int64)
        positions[0::2] = 2 * rows
        positions[1::2] = 2 * rows + 1
        snap_idx[positions[kept]] = log_rows[kept]
        log_nodes = np.empty(2 * count, dtype=np.int64)
        log_nodes[0::2] = b_dst
        log_nodes[1::2] = b_src

        total = int(kept.sum())
        logs = {name: np.empty((total, self.stores[name].dim)) for name in names}
        stores = self.stores

        # Plan over *writable* endpoints only: an all-static endpoint is
        # read-only for every store (its feature never changes during
        # replay), so two edges may share it without creating a
        # dependency.  Substituting unique sentinels for static endpoints
        # before planning lengthens runs considerably on streams where
        # unseen nodes mostly attach to the seen graph.
        arange = np.arange(1, count + 1, dtype=np.int64)
        plan_src = np.where(static_all[b_src], -arange, b_src)
        plan_dst = np.where(static_all[b_dst], -count - arange, b_dst)
        bounds = plan_update_blocks(plan_src, plan_dst)

        for lo, hi in zip(bounds[:-1], bounds[1:]):
            if hi - lo < _MIN_VECTOR_RUN:
                # Vectorisation overhead beats its gain on tiny runs (dense
                # conflict regions around hub nodes): take the per-event
                # path, writing into the same preallocated logs.
                for r in range(lo, hi):
                    s, d = int(b_src[r]), int(b_dst[r])
                    time = float(b_times[r])
                    weight = float(b_weights[r])
                    index = int(b_idx[r])
                    feature = b_feat[r] if b_feat is not None else None
                    for name in names:
                        stores[name].on_edge(index, s, d, time, feature, weight)
                    for endpoint, entry in ((d, 2 * r), (s, 2 * r + 1)):
                        if kept[entry]:
                            target = log_rows[entry]
                            for name in names:
                                logs[name][target] = stores[name].feature_of(endpoint)
                continue
            run_feat = b_feat[lo:hi] if b_feat is not None else None
            for name in names:
                stores[name].on_edge_block(
                    b_idx[lo:hi],
                    b_src[lo:hi],
                    b_dst[lo:hi],
                    b_times[lo:hi],
                    run_feat,
                    b_weights[lo:hi],
                )
            entries = slice(2 * lo, 2 * hi)
            run_kept = kept[entries]
            if run_kept.any():
                nodes = log_nodes[entries][run_kept]
                targets = log_rows[entries][run_kept]
                for name in names:
                    logs[name][targets] = stores[name].features_of(nodes)
        return snap_idx, logs

    def _sequential_store_pass(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        times: np.ndarray,
        weights: np.ndarray,
        edge_idx: np.ndarray,
        static_all: np.ndarray,
        num_incidences: int,
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Run the store updates and densify the snapshot logs.

        Dispatches on the collector's ``propagation`` knob: ``"blocked"``
        (the production path) scatter-updates maximal endpoint-disjoint
        runs and writes snapshots into preallocated logs,
        ``"event"`` is the per-event reference.  Both produce identical
        ``(snap_idx, logs)`` — same log order, same indices, same bits.
        """
        if self.propagation == "blocked":
            return self._run_store_updates_blocked(
                src, dst, times, weights, edge_idx, static_all, num_incidences
            )
        snap_idx, raw_logs = self._run_store_updates(
            src, dst, times, weights, edge_idx, static_all, num_incidences
        )
        snap_logs = {
            name: (
                np.asarray(raw_logs[name])
                if raw_logs[name]
                else np.zeros((0, self.stores[name].dim))
            )
            for name in self._store_names
        }
        return snap_idx, snap_logs

    def _combined_static_mask(self) -> np.ndarray:
        """Static-node mask shared by all stores: an edge between two
        all-static endpoints cannot change any store's state."""
        static_all = np.ones(self.num_nodes, dtype=bool)
        for name in self._store_names:
            static_all &= self._padded_mask(self.stores[name].static_node_mask())
        return static_all

    # -- assembly ------------------------------------------------------
    def finalize(self) -> None:
        """Materialise all recorded queries from the incidence logs."""
        src, dst, times_e, weights_e, edge_idx = self._concat_edges()
        num_edges = len(src)
        num_inc = 2 * num_edges

        # Interleaved incidence log: position 2e is src's view of edge e
        # (neighbour = dst), position 2e+1 is dst's view.  Concatenation
        # order equals stream order, so positions are a time axis.
        owner = np.empty(num_inc, dtype=np.int64)
        nbr = np.empty(num_inc, dtype=np.int64)
        owner[0::2], owner[1::2] = src, dst
        nbr[0::2], nbr[1::2] = dst, src
        inc_time = np.repeat(times_e, 2)
        inc_weight = np.repeat(weights_e, 2)
        inc_edge = np.repeat(edge_idx, 2)

        # Owner-sorted view of the log (stable ⇒ ascending position within
        # each owner).  ``incl[p]`` = #incidences of owner[p] at positions
        # ≤ p, i.e. the owner's degree right after its p-th event.
        kernels = active_backend()
        order = np.argsort(owner, kind="stable")
        incl = np.empty(num_inc, dtype=np.int64)
        if num_inc:
            incl[order] = kernels.grouped_running_count(owner[order])

        # deg of the *neighbour* at edge time (Eq. 2, inclusive of this
        # edge): the neighbour's own incidence is the partner position
        # p ^ 1, except for a self-loop's dst-side view where the last
        # occurrence is position p itself.
        if num_inc:
            partner = np.arange(num_inc) ^ 1
            nbr_deg = incl[partner]
            odd = np.arange(num_inc) % 2 == 1
            selfloop = owner == nbr
            nbr_deg[selfloop & odd] = incl[selfloop & odd]
        else:
            nbr_deg = np.zeros(0, dtype=np.int64)

        static_all = self._combined_static_mask()
        snap_idx, snap_logs = self._sequential_store_pass(
            src, dst, times_e, weights_e, edge_idx, static_all, num_inc
        )

        # Queries, concatenated in stream order (a prefix when stop_time
        # truncated the replay).
        if not self._query_blocks:
            return
        q_nodes = np.concatenate([b[0] for b in self._query_blocks])
        q_times = np.concatenate([b[1] for b in self._query_blocks])
        q_cut = np.repeat(
            np.array([b[2] for b in self._query_blocks], dtype=np.int64),
            np.array([len(b[0]) for b in self._query_blocks]),
        )
        num_q = len(q_nodes)
        if num_q == 0:
            return

        k = self.k
        node_valid = (q_nodes >= 0) & (q_nodes < self.num_nodes)
        q_safe = np.where(node_valid, q_nodes, 0)

        # Segmented searchsorted via a combined (owner, position) key; the
        # key is strictly increasing in the owner-sorted log.
        stride = num_inc + 1
        if self.num_nodes and self.num_nodes > (2**62) // stride:
            raise OverflowError(
                "stream too large for the batched context engine; "
                "use build_context_bundle(..., engine='event')"
            )
        key_sorted = (
            owner[order] * stride + order if num_inc else np.zeros(0, dtype=np.int64)
        )
        pos = np.searchsorted(key_sorted, q_safe * stride + q_cut, side="left")
        base = np.searchsorted(key_sorted, q_safe * stride, side="left")
        degrees = np.where(node_valid, pos - base, 0)
        self.target_degrees[:num_q] = degrees

        counts = np.minimum(degrees, k)
        has_any = counts > 0
        slots = np.arange(k)[None, :]
        valid = slots < counts[:, None]
        take = np.where(valid, (pos - counts)[:, None] + slots, 0)
        last = np.where(has_any, pos - 1, 0)
        if num_inc:
            inc = order[take]  # (Q, k) incidence positions, oldest → newest
            last_inc = order[last]
        else:
            inc = np.zeros((num_q, k), dtype=np.int64)
            last_inc = np.zeros(num_q, dtype=np.int64)

        self.mask[:num_q] = valid
        if num_inc:
            self.neighbor_nodes[:num_q] = np.where(valid, nbr[inc], -1)
            self.neighbor_times[:num_q] = np.where(valid, inc_time[inc], 0.0)
            self.neighbor_degrees[:num_q] = np.where(valid, nbr_deg[inc], 0)
            self.edge_weights[:num_q] = np.where(valid, inc_weight[inc], 0.0)
            if self._edge_feature_table is not None and self.edge_features.shape[2]:
                # Gather straight into the output block: fancy indexing would
                # materialise (and fault in) an extra (Q, k, d_e) temporary.
                out = self.edge_features[:num_q]
                kernels.take(
                    self._edge_feature_table,
                    np.where(valid, inc_edge[inc], 0),
                    out=out,
                )
                out[~valid] = 0.0
            self.target_last_times[:num_q] = np.where(
                has_any, inc_time[last_inc], q_times
            )
        else:
            self.target_last_times[:num_q] = q_times

        if self.seen_mask is not None:
            in_range = (q_nodes >= 0) & (q_nodes < len(self.seen_mask))
            seen = np.zeros(num_q, dtype=bool)
            seen[in_range] = self.seen_mask[q_nodes[in_range]]
            self.target_seen[:num_q] = seen

        # Feature snapshots: static table gathers overridden by the
        # evolving-vector log where the node was non-static.
        slot_snap = (
            np.where(valid, snap_idx[inc], -1)
            if num_inc
            else np.full((num_q, k), -1)
        )
        dynamic_slot = slot_snap >= 0
        if num_inc:
            # The owner's own post-edge snapshot lives on the partner
            # incidence of the same edge.
            target_snap = np.where(has_any, snap_idx[last_inc ^ 1], -1)
        else:
            target_snap = np.full(num_q, -1, dtype=np.int64)

        any_dynamic = dynamic_slot.any()
        for name in self._store_names:
            store = self.stores[name]
            table = store.snapshot_table()
            log = snap_logs[name]
            own_static = self._padded_mask(store.static_node_mask())

            gathered = self.neighbor_features[name][:num_q]
            if table is not None and len(table) and num_inc:
                safe_nbr = np.clip(np.where(valid, nbr[inc], 0), 0, len(table) - 1)
                kernels.take(table, safe_nbr, out=gathered)
                gathered[~valid] = 0.0
            if any_dynamic:
                gathered[dynamic_slot] = log[slot_snap[dynamic_slot]]

            target = self.target_features[name][:num_q]
            static_rows = node_valid & own_static[q_safe]
            if table is not None and len(table) and static_rows.any():
                target[static_rows] = table[
                    np.clip(q_nodes[static_rows], 0, len(table) - 1)
                ]
            evolving = ~static_rows & (target_snap >= 0)
            if evolving.any():
                target[evolving] = log[target_snap[evolving]]


@dataclass
class _ShardPayload:
    """Read-only inputs every shard worker needs (fork-shared or pickled once)."""

    src: np.ndarray
    dst: np.ndarray
    times: np.ndarray
    weights: np.ndarray
    cuts: np.ndarray  # interleave_cuts over the full stream
    query_nodes: np.ndarray
    k: int
    num_nodes: int
    edge_features: Optional[np.ndarray]
    # (name, static-mask over the id space, snapshot table or None, dim),
    # ordered like _store_names.
    stores_meta: List[Tuple[str, np.ndarray, Optional[np.ndarray], int]]
    shards: List[Tuple[int, int, int, int]]
    # Fork-shared zero-initialised output scratch (see _anon_shared_array):
    # present only when workers can write their query-slices directly,
    # sparing the large gathered arrays a trip through the result pipe.
    shared: Optional[Dict[str, np.ndarray]] = None


def _anon_shared_array(shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
    """Zero-initialised array backed by an anonymous MAP_SHARED mapping.

    Forked worker processes inherit the mapping, so their writes are
    visible to the parent without any serialisation; the mapping is freed
    with the last referencing array.  Only meaningful under the ``fork``
    start method.
    """
    import mmap

    count = int(np.prod(shape, dtype=np.int64))
    nbytes = count * np.dtype(dtype).itemsize
    if nbytes == 0:
        return np.zeros(shape, dtype=dtype)
    buffer = mmap.mmap(-1, nbytes)
    return np.frombuffer(buffer, dtype=dtype, count=count).reshape(shape)


# Module-level slot read by forked workers: set in the parent immediately
# before the pool is created, so fork children inherit the arrays without
# any pickling.  Non-fork start methods receive the payload through the
# pool initializer instead.
_SHARD_PAYLOAD: Optional[_ShardPayload] = None

# True only inside pool worker processes (set by the pool initializer):
# guards the worker-only telemetry hand-off so the parent's in-process
# fallback never serialises-and-resets its own registry.
_IN_SHARD_WORKER = False


def _set_shard_payload(payload: _ShardPayload) -> None:
    global _SHARD_PAYLOAD
    _SHARD_PAYLOAD = payload


def _shard_worker_init(
    payload: Optional[_ShardPayload], obs_mode: str
) -> None:
    """Pool-worker bootstrap: shard payload plus fresh worker telemetry.

    Fork children inherit the parent's payload through the module global
    (``payload`` is ``None``); other start methods receive it here.
    Either way the worker's observability is re-initialised from scratch
    (cleared registry, no trace writer) so the metrics it ships home with
    each shard result are pure worker-side deltas.
    """
    global _IN_SHARD_WORKER
    _IN_SHARD_WORKER = True
    if payload is not None:
        _set_shard_payload(payload)
    obs._fork_reinit(obs_mode)


def _collect_shard_entry(shard_index: int) -> Dict[str, object]:
    if _SHARD_PAYLOAD is None:
        raise RuntimeError("shard worker started without a payload")
    result = _collect_shard(_SHARD_PAYLOAD, shard_index)
    if _IN_SHARD_WORKER and obs.enabled():
        # Ship this task's metrics home and reset, so a worker that runs
        # several shards reports each shard's delta exactly once.
        registry = obs.get_registry()
        result["obs"] = registry.to_payload()
        registry.reset()
    return result


def _collect_shard(payload: _ShardPayload, shard_index: int) -> Dict[str, object]:
    """Batched-style collection restricted to one contiguous shard.

    Pure function of the payload: builds the shard's incidence log, answers
    its queries from that log alone (left-aligned slots, shard-local
    degrees), gathers static feature tables for the slots it filled, and
    exports the per-node tail (last ≤ k incidences) plus incidence counts
    that the merge pass carries across the shard boundary.  All positions
    in the result are *global* (``2 * edge_index + side``), so the merge
    pass can index the sequential snapshot log directly.

    Instrumented identically in-process and in pool workers: one
    ``replay.sharded.collect`` span plus ``replay.shard.*`` counters, so
    pooled worker registries and a serial run expose the same vocabulary.
    """
    e_lo, e_hi, q_lo, q_hi = payload.shards[shard_index]
    with obs.span("replay.sharded.collect", shard=shard_index):
        result = _collect_shard_impl(payload, shard_index)
    obs.inc("replay.shard.events", e_hi - e_lo)
    obs.inc("replay.shard.queries", q_hi - q_lo)
    return result


def _collect_shard_impl(
    payload: _ShardPayload, shard_index: int
) -> Dict[str, object]:
    e_lo, e_hi, q_lo, q_hi = payload.shards[shard_index]
    k = payload.k
    num_nodes = payload.num_nodes
    src = payload.src[e_lo:e_hi]
    dst = payload.dst[e_lo:e_hi]
    times_e = payload.times[e_lo:e_hi]
    weights_e = payload.weights[e_lo:e_hi]
    q_nodes = payload.query_nodes[q_lo:q_hi]
    # Incidences of this shard preceding each query, in local positions.
    cut_local = 2 * (payload.cuts[q_lo:q_hi] - e_lo)

    num_edges = e_hi - e_lo
    num_inc = 2 * num_edges
    num_q = q_hi - q_lo
    slots = np.arange(k)[None, :]

    # Shard-local interleaved incidence log (same layout as finalize()).
    owner = np.empty(num_inc, dtype=np.int64)
    nbr = np.empty(num_inc, dtype=np.int64)
    owner[0::2], owner[1::2] = src, dst
    nbr[0::2], nbr[1::2] = dst, src
    inc_time = np.repeat(times_e, 2)
    inc_weight = np.repeat(weights_e, 2)
    inc_edge = np.repeat(np.arange(e_lo, e_hi, dtype=np.int64), 2)

    kernels = active_backend()
    order = np.argsort(owner, kind="stable")
    incl = np.empty(num_inc, dtype=np.int64)
    if num_inc:
        # The tail export below also needs the run boundaries, so they are
        # recomputed here (cheap) alongside the backend's segment pass.
        sorted_owner = owner[order]
        run_start = np.empty(num_inc, dtype=bool)
        run_start[0] = True
        run_start[1:] = sorted_owner[1:] != sorted_owner[:-1]
        group_first = np.nonzero(run_start)[0]
        incl[order] = kernels.grouped_running_count(sorted_owner)
        partner = np.arange(num_inc) ^ 1
        nbr_deg = incl[partner]
        odd = np.arange(num_inc) % 2 == 1
        selfloop = owner == nbr
        nbr_deg[selfloop & odd] = incl[selfloop & odd]
    else:
        nbr_deg = np.zeros(0, dtype=np.int64)

    node_valid = (q_nodes >= 0) & (q_nodes < num_nodes)
    q_safe = np.where(node_valid, q_nodes, 0)
    stride = num_inc + 1
    if num_nodes and num_nodes > (2**62) // stride:
        raise OverflowError(
            "stream too large for the sharded context engine; "
            "use build_context_bundle(..., engine='event')"
        )
    key_sorted = (
        owner[order] * stride + order if num_inc else np.zeros(0, dtype=np.int64)
    )
    pos = np.searchsorted(key_sorted, q_safe * stride + cut_local, side="left")
    base = np.searchsorted(key_sorted, q_safe * stride, side="left")
    local_degree = np.where(node_valid, pos - base, 0)

    counts = np.minimum(local_degree, k)
    valid = slots < counts[:, None]
    has_any = counts > 0
    if num_inc:
        take = np.where(valid, (pos - counts)[:, None] + slots, 0)
        inc = order[take]
        last_inc = order[np.where(has_any, pos - 1, 0)]
        neighbor_nodes = np.where(valid, nbr[inc], -1)
        neighbor_times = np.where(valid, inc_time[inc], 0.0)
        neighbor_deg_local = np.where(valid, nbr_deg[inc], 0)
        edge_weights = np.where(valid, inc_weight[inc], 0.0)
        slot_edge = np.where(valid, inc_edge[inc], 0)
        slot_pos = np.where(valid, inc + 2 * e_lo, -1)
        last_time_local = np.where(has_any, inc_time[last_inc], 0.0)
        last_pos_local = np.where(has_any, last_inc + 2 * e_lo, -1)
    else:
        neighbor_nodes = np.full((num_q, k), -1, dtype=np.int64)
        neighbor_times = np.zeros((num_q, k))
        neighbor_deg_local = np.zeros((num_q, k), dtype=np.int64)
        edge_weights = np.zeros((num_q, k))
        slot_edge = np.zeros((num_q, k), dtype=np.int64)
        slot_pos = np.full((num_q, k), -1, dtype=np.int64)
        last_time_local = np.zeros(num_q)
        last_pos_local = np.full(num_q, -1, dtype=np.int64)

    # Static feature gathers — the bulk of the engine's work, fanned out
    # here so it runs inside the worker.  Dynamic (evolving) slots are
    # overridden later by the merge pass, exactly as finalize() overrides
    # its own table gathers.  With a shared scratch the gathers land
    # straight in the parent-visible mapping (zero-initialised, so the
    # no-table cases need no explicit clearing).
    shared = payload.shared if num_q else None
    qs = slice(q_lo, q_hi)

    def _out3(key: str, dim: int) -> np.ndarray:
        if shared is not None:
            return shared[key][qs]
        return np.zeros((num_q, k, dim))

    edge_feature_block: Optional[np.ndarray] = None
    table = payload.edge_features
    if table is not None and table.shape[1]:
        edge_feature_block = _out3("edge_features", table.shape[1])
        if num_inc:
            kernels.take(table, slot_edge, out=edge_feature_block)
            edge_feature_block[~valid] = 0.0

    neighbor_features: Dict[str, np.ndarray] = {}
    target_features: Dict[str, np.ndarray] = {}
    for name, own_static, feat_table, dim in payload.stores_meta:
        gathered = _out3(f"nbr::{name}", dim)
        if feat_table is not None and len(feat_table) and num_inc:
            safe_nbr = np.clip(np.maximum(neighbor_nodes, 0), 0, len(feat_table) - 1)
            kernels.take(feat_table, safe_nbr, out=gathered)
            gathered[~valid] = 0.0
        neighbor_features[name] = gathered
        target = (
            shared[f"tgt::{name}"][qs]
            if shared is not None
            else np.zeros((num_q, dim))
        )
        static_rows = node_valid & own_static[q_safe]
        if feat_table is not None and len(feat_table) and static_rows.any():
            target[static_rows] = feat_table[
                np.clip(q_nodes[static_rows], 0, len(feat_table) - 1)
            ]
        target_features[name] = target

    # Per-node exports for the merge pass: full incidence counts (degree
    # offsets) and the last ≤ k incidences (tails), oldest → newest.
    if num_inc:
        group_sizes = np.diff(np.append(group_first, num_inc))
        tail_nodes = sorted_owner[group_first]
        tail_len = np.minimum(group_sizes, k)
        tvalid = slots < tail_len[:, None]
        group_end = group_first + group_sizes
        tpos = np.where(tvalid, (group_end - tail_len)[:, None] + slots, 0)
        tinc = order[tpos]
        tail = {
            "nodes": tail_nodes,
            "len": tail_len,
            "counts": group_sizes.astype(np.int64),
            "nbr": np.where(tvalid, nbr[tinc], -1),
            "time": np.where(tvalid, inc_time[tinc], 0.0),
            "weight": np.where(tvalid, inc_weight[tinc], 0.0),
            "edge": np.where(tvalid, inc_edge[tinc], 0),
            "deg_local": np.where(tvalid, nbr_deg[tinc], 0),
            "pos": np.where(tvalid, tinc + 2 * e_lo, -1),
        }
    else:
        tail = None

    result = {
        "shard": shard_index,
        "node_valid": node_valid,
        "local_degree": local_degree,
        "last_time_local": last_time_local,
        "last_pos_local": last_pos_local,
        "tail": tail,
    }
    if shared is not None:
        # Slot arrays travel through the shared mapping as well; only the
        # small per-query vectors and the tail ride the result pipe.
        shared["neighbor_nodes"][qs] = neighbor_nodes
        shared["neighbor_times"][qs] = neighbor_times
        shared["neighbor_deg"][qs] = neighbor_deg_local
        shared["edge_weights"][qs] = edge_weights
        shared["slot_edge"][qs] = slot_edge
        shared["slot_pos"][qs] = slot_pos
    else:
        result.update(
            neighbor_nodes=neighbor_nodes,
            neighbor_times=neighbor_times,
            neighbor_deg_local=neighbor_deg_local,
            edge_weights=edge_weights,
            slot_edge=slot_edge,
            slot_pos=slot_pos,
            edge_feature_block=edge_feature_block,
            neighbor_features=neighbor_features,
            target_features=target_features,
        )
    return result


class _ShardedBundleCollector(_BatchedBundleCollector):
    """Shard-parallel variant of the batched collector.

    The interleave is partitioned with :func:`plan_shards`; shards are
    collected independently (worker processes when ``num_workers > 1``,
    in-process otherwise) while the parent runs the sequential store
    updates, and a merge pass stitches the per-shard results back into the
    bundle arrays, carrying degree offsets, k-recent tails, and the
    snapshot log across shard boundaries.  Output is bit-for-bit equal to
    the other engines.
    """

    def collect(
        self,
        ctdg: CTDG,
        queries: QuerySet,
        num_workers: int,
        num_shards: Optional[int] = None,
        clamp_workers: bool = True,
    ) -> None:
        # A pool wider than the CPUs this process may run on is pure
        # scheduling overhead (fork + context switches, no parallelism),
        # so the requested worker count is clamped to the visible CPU
        # budget — on a 1-CPU box every request degrades to the serial
        # in-process path.  Tests disable the clamp to exercise the pool
        # path regardless of the machine they run on.
        if clamp_workers:
            if hasattr(os, "sched_getaffinity"):
                cpu_budget = len(os.sched_getaffinity(0))
            else:  # pragma: no cover - non-Linux fallback
                cpu_budget = os.cpu_count() or 1
            num_workers = min(num_workers, cpu_budget)
        if num_shards is None:
            # Serial runs still shard (the merge path is identical either
            # way and must stay exercised); parallel runs get one shard
            # per worker.
            num_shards = num_workers if num_workers > 1 else 4
        cuts, _, _ = interleave_cuts(ctdg.times, queries.times)
        shards = plan_shards(cuts, ctdg.num_edges, num_shards)
        static_all = self._combined_static_mask()
        stores_meta = [
            (
                name,
                self._padded_mask(self.stores[name].static_node_mask()),
                self.stores[name].snapshot_table(),
                self.stores[name].dim,
            )
            for name in self._store_names
        ]
        payload = _ShardPayload(
            src=ctdg.src,
            dst=ctdg.dst,
            times=ctdg.times,
            weights=ctdg.weights,
            cuts=cuts,
            query_nodes=queries.nodes,
            k=self.k,
            num_nodes=self.num_nodes,
            edge_features=self._edge_feature_table,
            stores_meta=stores_meta,
            shards=shards,
        )

        # Route the large gathered arrays through a zero-initialised output
        # scratch that *becomes* the bundle storage: shard collection
        # writes its query-slices in place, so nothing big is copied at
        # merge time (or, under a pool, crosses the result pipe).  Shards
        # partition the query range, so every row is written exactly once.
        # In-process collection uses ordinary arrays; a worker pool needs
        # an anonymous MAP_SHARED mapping, which only fork start methods
        # inherit — without fork the pool falls back to pickled results.
        num_q = len(queries)
        use_pool = num_workers > 1 and len(shards) > 1
        fork_shared = "fork" in multiprocessing.get_all_start_methods()
        if num_q and (not use_pool or fork_shared):
            def alloc(shape, dtype=np.float64):
                if use_pool:
                    return _anon_shared_array(shape, dtype)
                return np.zeros(shape, dtype=dtype)

            k = self.k
            scratch: Dict[str, np.ndarray] = {
                "neighbor_nodes": alloc((num_q, k), np.int64),
                "neighbor_times": alloc((num_q, k)),
                "neighbor_deg": alloc((num_q, k), np.int64),
                "edge_weights": alloc((num_q, k)),
                "slot_edge": alloc((num_q, k), np.int64),
                "slot_pos": alloc((num_q, k), np.int64),
            }
            if self._edge_feature_table is not None and self.edge_features.shape[2]:
                scratch["edge_features"] = alloc(
                    (num_q, k, self.edge_features.shape[2])
                )
            for name in self._store_names:
                dim = self.stores[name].dim
                scratch[f"nbr::{name}"] = alloc((num_q, k, dim))
                scratch[f"tgt::{name}"] = alloc((num_q, dim))
            payload.shared = scratch
            self.neighbor_nodes = scratch["neighbor_nodes"]
            self.neighbor_times = scratch["neighbor_times"]
            self.neighbor_degrees = scratch["neighbor_deg"]
            self.edge_weights = scratch["edge_weights"]
            if "edge_features" in scratch:
                self.edge_features = scratch["edge_features"]
            for name in self._store_names:
                self.neighbor_features[name] = scratch[f"nbr::{name}"]
                self.target_features[name] = scratch[f"tgt::{name}"]
        edge_idx = np.arange(ctdg.num_edges, dtype=np.int64)
        store_args = (
            ctdg.src,
            ctdg.dst,
            ctdg.times,
            ctdg.weights,
            edge_idx,
            static_all,
            2 * ctdg.num_edges,
        )

        results = None
        if num_workers > 1 and len(shards) > 1:
            try:
                with obs.span(
                    "replay.sharded.fanout",
                    shards=len(shards),
                    workers=num_workers,
                ):
                    results, snap_idx, snap_logs = self._collect_parallel(
                        payload, num_workers, store_args
                    )
            except OSError as error:
                # Pool creation/submit failed before the store pass started;
                # a serial run from scratch is still safe.
                warnings.warn(
                    f"sharded context engine: worker pool unavailable ({error}); "
                    "falling back to in-process shard collection",
                    RuntimeWarning,
                    stacklevel=2,
                )
        if results is None:
            with obs.span("replay.sharded.scatter", edges=ctdg.num_edges):
                snap_idx, snap_logs = self._sequential_store_pass(*store_args)
            results = [_collect_shard(payload, s) for s in range(len(shards))]

        # Pool worker registries: every shard collected in a worker
        # process carries its metrics delta, folded here under a `proc`
        # label so the parent's render_prometheus() covers the whole
        # process tree while per-worker series stay distinguishable.
        registry = obs.get_registry()
        for result in results:
            worker_metrics = result.pop("obs", None)
            if worker_metrics is not None:
                registry.merge_payload(
                    worker_metrics,
                    extra_labels={"proc": f"shard{result['shard']}"},
                )

        with obs.span("replay.sharded.merge", shards=len(shards)):
            self._merge_shards(payload, results, snap_idx, snap_logs, queries)

    # ------------------------------------------------------------------
    def _collect_parallel(self, payload, num_workers, store_args):
        """Fan shards out to worker processes, store updates in the parent.

        The sequential store pass runs *between* submit and result
        collection, so its wall-clock overlaps the workers'.
        """
        import concurrent.futures as cf

        global _SHARD_PAYLOAD
        worker_obs_mode = "metrics" if obs.enabled() else "off"
        try:
            ctx = multiprocessing.get_context("fork")
            initializer, initargs = _shard_worker_init, (None, worker_obs_mode)
        except ValueError:  # platform without fork: ship the payload once per worker
            ctx = multiprocessing.get_context()
            initializer, initargs = _shard_worker_init, (payload, worker_obs_mode)
        from concurrent.futures.process import BrokenProcessPool

        _SHARD_PAYLOAD = payload
        try:
            # Pool creation and submits may raise OSError; both happen
            # before the store pass, so the caller's from-scratch serial
            # fallback is still safe for them.
            pool = cf.ProcessPoolExecutor(
                max_workers=min(num_workers, len(payload.shards)),
                mp_context=ctx,
                initializer=initializer,
                initargs=initargs,
            )
            try:
                futures = [
                    pool.submit(_collect_shard_entry, s)
                    for s in range(len(payload.shards))
                ]
                with obs.span(
                    "replay.sharded.scatter", edges=len(store_args[0])
                ):
                    snap_idx, snap_logs = self._sequential_store_pass(
                        *store_args
                    )
                # From here on the stores have been advanced, so no
                # exception that the caller would answer with a second
                # store pass may escape: pool/worker failures are handled
                # by redoing only the (pure, stateless) shard collection.
                try:
                    results = [f.result() for f in futures]
                except (BrokenProcessPool, OSError) as error:
                    warnings.warn(
                        f"sharded context engine: worker pool died ({error}); "
                        "recomputing shards in-process",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    results = [
                        _collect_shard(payload, s)
                        for s in range(len(payload.shards))
                    ]
            finally:
                try:
                    pool.shutdown(wait=True, cancel_futures=True)
                except Exception:
                    pass  # results are in hand; reaping failures are moot
        finally:
            _SHARD_PAYLOAD = None
        return results, snap_idx, snap_logs

    # ------------------------------------------------------------------
    def _merge_shards(self, payload, results, snap_idx, snap_logs, queries) -> None:
        """Stitch per-shard collections into the global bundle arrays.

        Sequential over shards.  Carried state: ``deg_off`` (per-node
        incidence counts from earlier shards), and per-node tail arrays
        holding each node's last ≤ k incidences with *globalised* values
        (neighbour degree, snapshot position).  Query slots a shard could
        not fill locally are spliced from the tail; evolving feature
        vectors are spliced from the sequential snapshot log.
        """
        k = self.k
        num_nodes = self.num_nodes
        slots = np.arange(k)[None, :]
        deg_off = np.zeros(num_nodes, dtype=np.int64)
        t_len = np.zeros(num_nodes, dtype=np.int64)
        t_nbr = np.full((num_nodes, k), -1, dtype=np.int64)
        t_time = np.zeros((num_nodes, k))
        t_weight = np.zeros((num_nodes, k))
        t_edge = np.zeros((num_nodes, k), dtype=np.int64)
        t_deg = np.zeros((num_nodes, k), dtype=np.int64)
        t_pos = np.full((num_nodes, k), -1, dtype=np.int64)

        feature_table = self._edge_feature_table
        store_meta = {meta[0]: meta for meta in payload.stores_meta}
        shared = payload.shared

        for result in results:
            shard = result["shard"]
            e_lo, e_hi, q_lo, q_hi = payload.shards[shard]
            num_q = q_hi - q_lo
            if num_q:
                qs = slice(q_lo, q_hi)
                q_nodes_s = queries.nodes[qs]
                q_times_s = queries.times[qs]
                node_valid = result["node_valid"]
                q_safe = np.where(node_valid, q_nodes_s, 0)
                off_q = np.where(node_valid, deg_off[q_safe], 0)
                local_degree = result["local_degree"]
                degrees = local_degree + off_q
                counts = np.minimum(degrees, k)
                local_counts = np.minimum(local_degree, k)
                need = counts - local_counts
                final_valid = slots < counts[:, None]

                # Views over the output arrays; workers already filled the
                # shard's rows when a shared scratch was in use, otherwise
                # the pickled per-shard arrays are copied in here.
                nbr_nodes = self.neighbor_nodes[qs]
                nbr_times = self.neighbor_times[qs]
                nbr_deg = self.neighbor_degrees[qs]
                weights = self.edge_weights[qs]
                if shared is not None:
                    slot_edge = shared["slot_edge"][qs]
                    slot_pos = shared["slot_pos"][qs]
                else:
                    nbr_nodes[:] = result["neighbor_nodes"]
                    nbr_times[:] = result["neighbor_times"]
                    nbr_deg[:] = result["neighbor_deg_local"]
                    weights[:] = result["edge_weights"]
                    slot_edge = result["slot_edge"]
                    slot_pos = result["slot_pos"]
                # Globalise the shard-local neighbour degrees (a locally
                # valid slot always has a positive local count).
                nbr_deg += np.where(
                    nbr_deg > 0, deg_off[np.maximum(nbr_nodes, 0)], 0
                )

                shift_rows = np.nonzero(need > 0)[0]
                if len(shift_rows):
                    n_r = need[shift_rows][:, None]
                    lc_r = local_counts[shift_rows][:, None]
                    src_slot = slots - n_r
                    from_local = (src_slot >= 0) & (src_slot < lc_r)
                    take_local = np.where(from_local, src_slot, 0)
                    nodes_r = q_safe[shift_rows]
                    tlen_r = t_len[nodes_r][:, None]
                    from_tail = slots < n_r
                    take_tail = np.clip(tlen_r - n_r + slots, 0, k - 1)

                    def splice(local_arr, tail_arr, fill):
                        loc = np.take_along_axis(
                            local_arr[shift_rows], take_local, axis=1
                        )
                        tl = tail_arr[nodes_r[:, None], take_tail]
                        return np.where(
                            from_local, loc, np.where(from_tail, tl, fill)
                        )

                    nbr_nodes[shift_rows] = splice(nbr_nodes, t_nbr, -1)
                    nbr_times[shift_rows] = splice(nbr_times, t_time, 0.0)
                    nbr_deg[shift_rows] = splice(nbr_deg, t_deg, 0)
                    weights[shift_rows] = splice(weights, t_weight, 0.0)
                    slot_edge[shift_rows] = splice(slot_edge, t_edge, 0)
                    slot_pos[shift_rows] = splice(slot_pos, t_pos, -1)

                self.target_degrees[qs] = degrees
                self.mask[qs] = final_valid

                # Edge features: worker gathered the local slots; rows that
                # received tail entries are re-gathered with the spliced
                # edge ids (same table, same values — still bit-for-bit).
                if feature_table is not None and self.edge_features.shape[2]:
                    block = self.edge_features[qs]
                    if shared is None and result["edge_feature_block"] is not None:
                        block[:] = result["edge_feature_block"]
                    if len(shift_rows):
                        patched = feature_table[slot_edge[shift_rows]]
                        patched[~final_valid[shift_rows]] = 0.0
                        block[shift_rows] = patched

                # Target chronology: newest local incidence, else the
                # carried tail's newest, else the query time itself.
                has_local = local_degree > 0
                tlen_q = np.where(node_valid, t_len[q_safe], 0)
                tail_last = np.maximum(tlen_q - 1, 0)
                last_pos = np.where(
                    has_local,
                    result["last_pos_local"],
                    np.where(tlen_q > 0, t_pos[q_safe, tail_last], -1),
                )
                self.target_last_times[qs] = np.where(
                    has_local,
                    result["last_time_local"],
                    np.where(tlen_q > 0, t_time[q_safe, tail_last], q_times_s),
                )

                if len(snap_idx):
                    snap_slot = np.where(
                        final_valid & (slot_pos >= 0),
                        snap_idx[np.maximum(slot_pos, 0)],
                        -1,
                    )
                    target_snap = np.where(
                        last_pos >= 0, snap_idx[np.maximum(last_pos, 0) ^ 1], -1
                    )
                else:
                    snap_slot = np.full((num_q, k), -1, dtype=np.int64)
                    target_snap = np.full(num_q, -1, dtype=np.int64)
                dynamic_slot = snap_slot >= 0

                for name in self._store_names:
                    _, own_static, feat_table, _ = store_meta[name]
                    log = snap_logs[name]
                    gathered = self.neighbor_features[name][qs]
                    if shared is None:
                        gathered[:] = result["neighbor_features"][name]
                    if len(shift_rows):
                        # Re-gather spliced rows from the static table with
                        # the final neighbour ids (identical values).
                        if feat_table is not None and len(feat_table):
                            safe = np.clip(
                                np.maximum(nbr_nodes[shift_rows], 0),
                                0,
                                len(feat_table) - 1,
                            )
                            patched = feat_table[safe]
                            patched[~final_valid[shift_rows]] = 0.0
                        else:
                            patched = np.zeros_like(gathered[shift_rows])
                        gathered[shift_rows] = patched
                    if dynamic_slot.any():
                        gathered[dynamic_slot] = log[snap_slot[dynamic_slot]]

                    target = self.target_features[name][qs]
                    if shared is None:
                        target[:] = result["target_features"][name]
                    static_rows = node_valid & own_static[q_safe]
                    evolving = ~static_rows & (target_snap >= 0)
                    if evolving.any():
                        target[evolving] = log[target_snap[evolving]]

            # Advance the carried state past this shard's incidences.
            tail = result["tail"]
            if tail is not None:
                nodes = tail["nodes"]
                a = t_len[nodes]
                b = tail["len"]
                new_len = np.minimum(a + b, k)
                deg_fix = tail["deg_local"] + np.where(
                    tail["deg_local"] > 0, deg_off[np.maximum(tail["nbr"], 0)], 0
                )
                logical = (a + b)[:, None] - new_len[:, None] + slots
                col = np.where(logical < a[:, None], logical, k + logical - a[:, None])
                col = np.clip(col, 0, 2 * k - 1)
                keep = slots < new_len[:, None]

                def roll(tail_arr, local_arr, fill):
                    cat = np.concatenate([tail_arr[nodes], local_arr], axis=1)
                    merged = np.take_along_axis(cat, col, axis=1)
                    return np.where(keep, merged, fill)

                t_nbr[nodes] = roll(t_nbr, tail["nbr"], -1)
                t_time[nodes] = roll(t_time, tail["time"], 0.0)
                t_weight[nodes] = roll(t_weight, tail["weight"], 0.0)
                t_edge[nodes] = roll(t_edge, tail["edge"], 0)
                t_deg[nodes] = roll(t_deg, deg_fix, 0)
                t_pos[nodes] = roll(t_pos, tail["pos"], -1)
                t_len[nodes] = new_len
                deg_off[nodes] += tail["counts"]

        # Seen-at-training flags, vectorised over the whole query set.
        if self.seen_mask is not None and len(queries):
            q_nodes = queries.nodes
            in_range = (q_nodes >= 0) & (q_nodes < len(self.seen_mask))
            seen = np.zeros(len(q_nodes), dtype=bool)
            seen[in_range] = self.seen_mask[q_nodes[in_range]]
            self.target_seen[:] = seen


def partition_processes(
    processes: Sequence[FeatureProcess],
) -> Tuple[
    Dict[str, OnlineFeatureStore],
    Dict[str, float],
    Dict[str, np.ndarray],
    Optional[np.ndarray],
]:
    """Split fitted processes into the bundle's four feature mechanisms.

    Returns ``(stores, structural_params, static_tables, seen_mask)``:
    online stores that must be replayed event-by-event, lazily-encoded
    structural parameters, static per-node tables gathered at access time,
    and the last process's seen-node mask.  Shared by
    :func:`build_context_bundle` and the serving layer's
    :class:`repro.serving.IncrementalContextStore`, so both classify a
    process the same way.
    """
    stores: Dict[str, OnlineFeatureStore] = {}
    structural_params: Dict[str, float] = {}
    static_tables: Dict[str, np.ndarray] = {}
    seen_mask: Optional[np.ndarray] = None
    for process in processes:
        if not process.is_fitted():
            raise RuntimeError(f"feature process {process.name!r} is not fitted")
        seen_mask = process.seen_mask
        if isinstance(process, StructuralFeatureProcess):
            structural_params = {"dim": float(process.dim), "alpha": process.alpha}
            continue
        store = process.make_store()
        if isinstance(store, StaticStore):
            # Static features never change, so x_j(t(l)) == table[j]; gather
            # lazily from the table instead of storing (Q, k, d_v) snapshots.
            static_tables[process.name] = store.table
            continue
        stores[process.name] = store
    return stores, structural_params, static_tables, seen_mask


# Sentinel distinguishing "caller never passed this" from any real value
# (needed while the deprecated positional spellings below are accepted).
_UNSET = object()

# Former positional parameters of build_context_bundle, in their old order.
# They are keyword-only now; positional use warns and will be removed.
_LEGACY_BUNDLE_KNOBS = (
    ("engine", "batched"),
    ("num_workers", 0),
    ("num_shards", None),
    ("clamp_workers", True),
    ("propagation", "blocked"),
)


def build_context_bundle(
    ctdg: CTDG,
    queries: QuerySet,
    k: int,
    processes: Sequence[FeatureProcess] = (),
    *_legacy_engine_args,
    engine=_UNSET,
    num_workers=_UNSET,
    num_shards=_UNSET,
    clamp_workers=_UNSET,
    propagation=_UNSET,
) -> ContextBundle:
    """Replay ``ctdg`` once and materialise contexts for every query.

    ``processes`` must already be fitted (their seen-node features learned on
    the training prefix).  Structural processes are handled lazily — only
    degrees are stored, and φ_d is applied on access — because their features
    are a pure function of degree.

    ``engine`` selects the replay implementation: ``"batched"`` (default)
    uses the vectorised block engine, ``"event"`` the per-event reference,
    and ``"sharded"`` partitions the interleave into contiguous shards
    collected in parallel worker processes (``num_workers`` ≥ 2; ``0``/``1``
    run the shards serially in-process) and merged back together.
    ``num_shards`` overrides the partition granularity (defaults to the
    worker count, or 4 for serial runs so the merge path stays exercised).
    The worker count is clamped to the CPUs available to this process
    (``clamp_workers=False`` disables that, for tests that must exercise
    the pool on any machine).

    ``propagation`` selects how the batched and sharded engines run the
    sequential store pass (the one stream-length-proportional loop left on
    the context path): ``"blocked"`` (default) scatter-updates maximal
    endpoint-disjoint runs planned by
    :func:`repro.streams.replay.plan_update_blocks`, ``"event"`` is the
    per-event reference.  Both are bit-for-bit identical; the ``"event"``
    *engine* ignores the knob (it is the per-event reference in full).
    All engines produce bit-identical bundles for every store honouring the
    :meth:`~repro.features.base.OnlineFeatureStore.static_node_mask`
    contract (including its zero-start assumption for untouched non-static
    nodes — all in-repo stores qualify); a store outside that contract
    must be materialised with ``engine="event"``, which also serves as the
    oracle for equivalence tests.

    The execution knobs (``engine``, ``num_workers``, ``num_shards``,
    ``clamp_workers``, ``propagation``) are keyword-only; their historical
    positional spellings still work but emit a ``DeprecationWarning`` and
    will be removed in two releases.  Defaults: ``engine="batched"``,
    ``num_workers=0``, ``num_shards=None``, ``clamp_workers=True``,
    ``propagation="blocked"``.
    """
    explicit = {
        "engine": engine,
        "num_workers": num_workers,
        "num_shards": num_shards,
        "clamp_workers": clamp_workers,
        "propagation": propagation,
    }
    resolved = dict(_LEGACY_BUNDLE_KNOBS)
    if _legacy_engine_args:
        if len(_legacy_engine_args) > len(_LEGACY_BUNDLE_KNOBS):
            raise TypeError(
                "build_context_bundle() takes at most "
                f"{4 + len(_LEGACY_BUNDLE_KNOBS)} positional arguments "
                f"({4 + len(_legacy_engine_args)} given)"
            )
        names = ", ".join(name for name, _ in _LEGACY_BUNDLE_KNOBS)
        warnings.warn(
            f"passing the execution knobs ({names}) positionally to "
            "build_context_bundle is deprecated and will stop working in "
            "two releases; pass them as keywords (or configure them via "
            "ExecutionConfig on the pipeline API)",
            DeprecationWarning,
            stacklevel=2,
        )
        for (name, _), value in zip(_LEGACY_BUNDLE_KNOBS, _legacy_engine_args):
            if explicit[name] is not _UNSET:
                raise TypeError(
                    f"build_context_bundle() got multiple values for "
                    f"argument {name!r}"
                )
            resolved[name] = value
    for name, value in explicit.items():
        if value is not _UNSET:
            resolved[name] = value
    engine = resolved["engine"]
    num_workers = resolved["num_workers"]
    num_shards = resolved["num_shards"]
    clamp_workers = resolved["clamp_workers"]
    propagation = resolved["propagation"]

    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if engine not in ("batched", "event", "sharded"):
        raise ValueError(
            f"unknown context engine {engine!r}; use 'batched', 'event' or 'sharded'"
        )
    if num_workers < 0:
        raise ValueError(f"num_workers must be non-negative, got {num_workers}")
    if propagation not in ("blocked", "event"):
        raise ValueError(
            f"unknown propagation mode {propagation!r}; use 'blocked' or 'event'"
        )
    stores, structural_params, static_tables, seen_mask = partition_processes(
        processes
    )

    with obs.span(
        "replay.build_bundle",
        engine=engine,
        edges=ctdg.num_edges,
        queries=len(queries),
    ):
        if engine == "sharded":
            collector = _ShardedBundleCollector(
                num_queries=len(queries),
                k=k,
                edge_feature_dim=ctdg.edge_feature_dim,
                stores=stores,
                seen_mask=seen_mask,
                num_nodes=ctdg.num_nodes,
                edge_features=ctdg.edge_features,
                propagation=propagation,
            )
            collector.collect(
                ctdg,
                queries,
                num_workers=num_workers,
                num_shards=num_shards,
                clamp_workers=clamp_workers,
            )
        elif engine == "batched":
            collector = _BatchedBundleCollector(
                num_queries=len(queries),
                k=k,
                edge_feature_dim=ctdg.edge_feature_dim,
                stores=stores,
                seen_mask=seen_mask,
                num_nodes=ctdg.num_nodes,
                edge_features=ctdg.edge_features,
                propagation=propagation,
            )
            replay_batched(ctdg, queries.nodes, queries.times, [collector])
            collector.finalize()
        else:
            collector = _BundleCollector(
                num_queries=len(queries),
                k=k,
                edge_feature_dim=ctdg.edge_feature_dim,
                stores=stores,
                seen_mask=seen_mask,
            )
            replay(ctdg, queries.nodes, queries.times, [collector])
    obs.inc("replay.events", ctdg.num_edges, engine=engine)
    obs.inc("replay.queries", len(queries), engine=engine)
    return ContextBundle(
        ctdg=ctdg,
        queries=queries,
        k=k,
        neighbor_nodes=collector.neighbor_nodes,
        neighbor_times=collector.neighbor_times,
        neighbor_degrees=collector.neighbor_degrees,
        edge_features=collector.edge_features,
        edge_weights=collector.edge_weights,
        mask=collector.mask,
        target_degrees=collector.target_degrees,
        target_last_times=collector.target_last_times,
        target_seen=collector.target_seen,
        target_features=collector.target_features,
        neighbor_features=collector.neighbor_features,
        structural_params=structural_params,
        static_tables=static_tables,
    )
