"""``repro.models`` — SLIM (the paper's model) and all baseline TGNNs.

The :func:`create_model` registry builds any method in the paper's Table III
by name against a prepared :class:`~repro.models.context.ContextBundle`:

* featureless baselines: ``jodie``, ``dysat``, ``tgat``, ``tgn``,
  ``graphmixer``, ``dygformer``, ``freedyg``, ``slade`` (zero node features);
* ``<baseline>+rf`` variants: fresh random features for every node;
* SLIM ablations: ``slim+zf``, ``slim+rf``, ``slim+random``,
  ``slim+positional``, ``slim+structural``, ``slim+joint``;
* DTDG shift baselines: ``dida``, ``slid``.

The full SPLASH method (selection + SLIM) lives in
:class:`repro.pipeline.splash.Splash`.
"""

from __future__ import annotations

from typing import Optional

from repro.models.base import (
    ContextModel,
    FitHistory,
    ModelConfig,
    StreamModel,
    evaluate_model,
)
from repro.models.context import ContextBundle, build_context_bundle
from repro.models.dtdg import DIDA, SLID, DTDGBaseline
from repro.models.dygformer import DyGFormer
from repro.models.dysat import DySAT
from repro.models.freedyg import FreeDyG
from repro.models.graphmixer import GraphMixer
from repro.models.jodie import JODIE
from repro.models.memory import MemoryModel
from repro.models.slade import SLADE
from repro.models.slim import SLIM
from repro.models.tgat import TGAT
from repro.models.tgn import TGN

_CONTEXT_BASELINES = {
    "dysat": DySAT,
    "tgat": TGAT,
    "graphmixer": GraphMixer,
    "dygformer": DyGFormer,
    "freedyg": FreeDyG,
}
_MEMORY_BASELINES = {"jodie": JODIE, "tgn": TGN, "slade": SLADE}
_SLIM_VARIANTS = {
    "slim+zf": "zero",
    "slim+rf": "fresh_random",
    "slim+random": "random",
    "slim+positional": "positional",
    "slim+structural": "structural",
    "slim+joint": ContextBundle.JOINT_NAME,
}


def available_methods() -> list:
    names = []
    for base in list(_CONTEXT_BASELINES) + list(_MEMORY_BASELINES):
        names.append(base)
        names.append(base + "+rf")
    names.extend(_SLIM_VARIANTS)
    names.extend(["dida", "slid"])
    return sorted(names)


def create_model(
    name: str,
    bundle: ContextBundle,
    config: Optional[ModelConfig] = None,
) -> StreamModel:
    """Instantiate the method ``name`` against ``bundle``.

    The bundle must contain the feature processes the method needs:
    ``zero``/``fresh_random`` for baselines, and the SPLASH candidates for
    the SLIM ablations.
    """
    key = name.lower()
    config = config or ModelConfig()

    if key in _SLIM_VARIANTS:
        feature = _SLIM_VARIANTS[key]
        return SLIM(
            feature_name=feature,
            feature_dim=bundle.feature_dim(feature),
            edge_feature_dim=bundle.edge_feature_dim,
            config=config,
        )

    feature = "zero"
    if key.endswith("+rf"):
        feature = "fresh_random"
        key = key[: -len("+rf")]

    if key in _CONTEXT_BASELINES:
        cls = _CONTEXT_BASELINES[key]
        kwargs = dict(
            feature_name=feature,
            feature_dim=bundle.feature_dim(feature),
            edge_feature_dim=bundle.edge_feature_dim,
            config=config,
        )
        if cls in (GraphMixer, FreeDyG):
            kwargs["k"] = bundle.k
        return cls(**kwargs)

    if key in _MEMORY_BASELINES:
        cls = _MEMORY_BASELINES[key]
        return cls(
            feature_name=feature,
            feature_dim=bundle.feature_dim(feature),
            edge_feature_dim=bundle.edge_feature_dim,
            num_nodes=bundle.ctdg.num_nodes,
            config=config,
        )

    if key == "dida":
        return DIDA(feature, bundle.feature_dim(feature), config=config)
    if key == "slid":
        return SLID(feature, bundle.feature_dim(feature), config=config)

    raise KeyError(
        f"unknown method {name!r}; available: {', '.join(available_methods())}"
    )


__all__ = [
    "ModelConfig",
    "StreamModel",
    "ContextModel",
    "MemoryModel",
    "FitHistory",
    "evaluate_model",
    "ContextBundle",
    "build_context_bundle",
    "SLIM",
    "TGAT",
    "DySAT",
    "GraphMixer",
    "DyGFormer",
    "FreeDyG",
    "JODIE",
    "TGN",
    "SLADE",
    "DIDA",
    "SLID",
    "DTDGBaseline",
    "create_model",
    "available_methods",
]
