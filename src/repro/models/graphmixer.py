"""GraphMixer baseline (Cong et al., ICLR 2023).

"Do we really need complicated model architectures for temporal networks?"
— GraphMixer answers with an all-MLP design: a *link encoder* applies
MLP-Mixer blocks (token-mixing across the k recent edges, channel-mixing
across features) to the [edge feature ‖ fixed time encoding] matrix, and a
*node encoder* mean-pools neighbour features.  We reproduce both, with the
same fixed (non-learnable) time encoding the original uses.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.features.time_encoding import TimeEncoder
from repro.models.base import ContextModel, ModelConfig
from repro.models.common import assemble_tokens
from repro.models.context import ContextBundle
from repro.nn.layers import MLP, LayerNorm, Linear, Module
from repro.nn.tensor import Tensor, concat
from repro.utils.rng import spawn_rngs


class MixerBlock(Module):
    """One MLP-Mixer block over a (B, k, d) token matrix."""

    def __init__(self, num_tokens: int, dim: int, rng=None) -> None:
        super().__init__()
        rng_t, rng_c = spawn_rngs(None if rng is None else rng, 2)
        self.token_norm = LayerNorm(dim)
        self.token_mlp = MLP([num_tokens, num_tokens // 2 or 1, num_tokens], rng=rng_t)
        self.channel_norm = LayerNorm(dim)
        self.channel_mlp = MLP([dim, dim * 2, dim], rng=rng_c)

    def forward(self, tokens: Tensor) -> Tensor:
        # Token mixing operates along the k axis: transpose, MLP, transpose.
        normed = self.token_norm(tokens)
        mixed = self.token_mlp(normed.swapaxes(1, 2)).swapaxes(1, 2)
        tokens = tokens + mixed
        normed = self.channel_norm(tokens)
        return tokens + self.channel_mlp(normed)


class GraphMixer(ContextModel):
    name = "GraphMixer"

    def __init__(
        self,
        feature_name: str,
        feature_dim: int,
        edge_feature_dim: int,
        k: int,
        config: Optional[ModelConfig] = None,
        num_blocks: int = 2,
    ) -> None:
        config = config or ModelConfig()
        super().__init__(config)
        self.feature_name = feature_name
        self.feature_dim = feature_dim
        self.edge_feature_dim = edge_feature_dim
        self.k = k
        d_h = config.hidden_dim
        rng_in, rng_b, rng_out, rng_d = spawn_rngs(config.seed, 4)

        self.time_encoder = TimeEncoder(config.time_dim)
        token_width = feature_dim + edge_feature_dim + config.time_dim
        self.input_proj = Linear(token_width, d_h, rng=rng_in)
        self.blocks = [
            MixerBlock(k, d_h, rng=int(rng_b.integers(2**31)))
            for _ in range(num_blocks)
        ]
        for index, block in enumerate(self.blocks):
            setattr(self, f"block{index}", block)
        self.output_norm = LayerNorm(d_h)
        self.merge = MLP(
            [d_h + feature_dim, d_h, d_h], dropout=config.dropout, rng=rng_out
        )
        self._decoder_rng = rng_d

    def build_decoder(self, output_dim: int) -> Module:
        d_h = self.config.hidden_dim
        return MLP(
            [d_h, d_h, output_dim], dropout=self.config.dropout, rng=self._decoder_rng
        )

    def encode(self, bundle: ContextBundle, idx: np.ndarray) -> Tensor:
        tokens, mask, target_feats = assemble_tokens(
            bundle, idx, self.feature_name, self.time_encoder
        )
        hidden = self.input_proj(Tensor(tokens))
        for block in self.blocks:
            hidden = block(hidden)
        hidden = self.output_norm(hidden)
        counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
        pooled = (hidden * mask[..., None].astype(float)).sum(axis=1) * (1.0 / counts)
        return self.merge(concat([pooled, Tensor(target_feats)], axis=-1))
