"""Shared machinery for memory-based TGNNs (JODIE, TGN, SLADE).

These models carry per-node *memory* that evolves along the stream, so they
cannot train on shuffled query minibatches.  Training replays the stream in
chronological edge blocks:

1. the block's edges update memory **in-graph** (t-batched so each node
   appears once per level, letting updates vectorise);
2. queries falling in the block's time window are decoded against the
   updated rows — gradients flow from the query loss through the in-block
   update chain into the memory updater;
3. after the optimiser step the rows are detached into the numpy memory
   table and the next block begins.

This mirrors how the original JODIE/TGN implementations train (batch-local
gradient flow with memory detached across batches).  Block-granularity also
means a query inside a block reads end-of-block memory — the same ≤ B-edge
staleness/lookahead trade-off those systems make.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.models.base import FitHistory, ModelConfig, StreamModel
from repro.models.context import ContextBundle
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import Tensor, no_grad
from repro.tasks.base import Task
from repro.utils.rng import new_rng


def tbatch_levels(src: np.ndarray, dst: np.ndarray) -> List[np.ndarray]:
    """Partition block edges into levels where no node repeats (JODIE's
    t-batching).  Edges within a level update memory independently and can
    be processed as one vectorised call; levels run sequentially."""
    last_level: Dict[int, int] = {}
    levels: List[List[int]] = []
    for position, (u, v) in enumerate(zip(src, dst)):
        level = max(last_level.get(int(u), -1), last_level.get(int(v), -1)) + 1
        if level == len(levels):
            levels.append([])
        levels[level].append(position)
        last_level[int(u)] = level
        last_level[int(v)] = level
    return [np.asarray(level, dtype=np.int64) for level in levels]


class MemoryModel(StreamModel):
    """Chronological-replay trainer for memory TGNNs."""

    def __init__(
        self,
        feature_name: str,
        feature_dim: int,
        edge_feature_dim: int,
        num_nodes: int,
        config: Optional[ModelConfig] = None,
    ) -> None:
        super().__init__()
        self.config = config or ModelConfig()
        self.feature_name = feature_name
        self.feature_dim = feature_dim
        self.edge_feature_dim = edge_feature_dim
        self.num_nodes = num_nodes
        self.block_size = int(self.config.extra.get("block_size", 200))
        self._task: Optional[Task] = None
        self._rng = new_rng(self.config.seed)
        self._memory = np.zeros((num_nodes, self.config.hidden_dim))
        self._last_update = np.zeros(num_nodes)
        self._logits_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def update_block(
        self,
        bundle: ContextBundle,
        edge_slice: slice,
        read_row,
    ) -> Tuple[Dict[int, Tensor], Optional[Tensor]]:
        """Apply one edge block to memory.

        Returns (updated rows as in-graph tensors, optional unsupervised
        loss term).  ``read_row(node)`` yields the node's current memory row
        as a Tensor (in-graph if updated this block, constant otherwise).
        """

    @abstractmethod
    def decode(
        self,
        bundle: ContextBundle,
        idx: np.ndarray,
        read_row,
    ) -> Tensor:
        """Logits for the queries at ``idx`` given current memory."""

    def build_decoder(self, output_dim: int) -> None:
        """Instantiate output heads (called once when the task is known)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def node_features(self, bundle: ContextBundle, nodes: np.ndarray) -> np.ndarray:
        """Static node features for memory models (zero or fresh-random)."""
        if self.feature_name in bundle.static_tables:
            return bundle.static_tables[self.feature_name][np.maximum(nodes, 0)]
        return np.zeros((len(nodes), self.feature_dim))

    def _reset_memory(self) -> None:
        self._memory = np.zeros((self.num_nodes, self.config.hidden_dim))
        self._last_update = np.zeros(self.num_nodes)

    # ------------------------------------------------------------------
    def fit(
        self,
        bundle: ContextBundle,
        task: Task,
        train_idx: np.ndarray,
        val_idx: Optional[np.ndarray] = None,
    ) -> FitHistory:
        train_idx = np.asarray(train_idx, dtype=np.int64)
        self._task = task
        if not hasattr(self, "decoder_built"):
            self.build_decoder(task.output_dim)
            self.decoder_built = True
        optimizer = Adam(
            self.parameters(), lr=self.config.lr, weight_decay=self.config.weight_decay
        )
        train_set = set(int(i) for i in train_idx)
        history = FitHistory()
        best_state = None
        stale = 0
        for epoch in range(self.config.epochs):
            self.train()
            losses, logits_cache = self._replay_epoch(
                bundle, task, train_set, optimizer
            )
            history.train_losses.append(float(np.mean(losses)) if losses else 0.0)
            if val_idx is not None and len(val_idx):
                val_idx = np.asarray(val_idx, dtype=np.int64)
                scores = task.scores(logits_cache[val_idx])
                try:
                    score = task.evaluate(scores, val_idx)
                except ValueError:
                    score = -history.train_losses[-1]
                history.val_scores.append(score)
                if score > history.best_val_score + 1e-12:
                    history.best_val_score = score
                    history.best_epoch = epoch
                    best_state = self.state_dict()
                    stale = 0
                else:
                    stale += 1
                    if stale > self.config.patience:
                        break
        if best_state is not None:
            self.load_state_dict(best_state)
        # Final clean replay with the best parameters to cache predictions.
        self.eval()
        with no_grad():
            _, self._logits_cache = self._replay_epoch(bundle, task, set(), None)
        return history

    # ------------------------------------------------------------------
    def _replay_epoch(
        self,
        bundle: ContextBundle,
        task: Task,
        train_set: set,
        optimizer: Optional[Adam],
    ) -> Tuple[List[float], np.ndarray]:
        ctdg = bundle.ctdg
        queries = bundle.queries
        num_edges = ctdg.num_edges
        num_queries = len(queries)
        logits_cache = np.zeros((num_queries, task.output_dim))
        self._reset_memory()

        losses: List[float] = []
        edge_ptr = 0
        query_ptr = 0
        while edge_ptr < num_edges or query_ptr < num_queries:
            block_stop = min(edge_ptr + self.block_size, num_edges)
            if edge_ptr < num_edges:
                window_end = (
                    ctdg.times[block_stop] if block_stop < num_edges else np.inf
                )
            else:
                window_end = np.inf

            pending: Dict[int, Tensor] = {}

            def read_row(node: int) -> Tensor:
                row = pending.get(node)
                if row is not None:
                    return row
                return Tensor(self._memory[node])

            unsup_loss: Optional[Tensor] = None
            if edge_ptr < block_stop:
                pending_rows, unsup_loss = self.update_block(
                    bundle, slice(edge_ptr, block_stop), read_row
                )
                pending.update(pending_rows)

            # Queries whose time falls before the next block's first edge.
            q_stop = query_ptr
            while q_stop < num_queries and queries.times[q_stop] < window_end:
                q_stop += 1
            loss_terms: List[Tensor] = []
            if unsup_loss is not None:
                loss_terms.append(unsup_loss)
            if q_stop > query_ptr:
                idx = np.arange(query_ptr, q_stop)
                logits = self.decode(bundle, idx, read_row)
                logits_cache[idx] = logits.data
                supervised = np.array(
                    [int(i) in train_set for i in idx], dtype=bool
                )
                if supervised.any():
                    sup_idx = idx[supervised]
                    loss_terms.append(
                        task.loss(logits[np.nonzero(supervised)[0]], sup_idx)
                    )
            if optimizer is not None and loss_terms:
                total = loss_terms[0]
                for term in loss_terms[1:]:
                    total = total + term
                optimizer.zero_grad()
                total.backward()
                clip_grad_norm(self.parameters(), self.config.grad_clip)
                optimizer.step()
                losses.append(total.item())

            # Detach block updates into the persistent memory table.
            for node, row in pending.items():
                self._memory[node] = row.data
            if edge_ptr < block_stop:
                for position in range(edge_ptr, block_stop):
                    t = float(ctdg.times[position])
                    self._last_update[int(ctdg.src[position])] = t
                    self._last_update[int(ctdg.dst[position])] = t
            edge_ptr = block_stop
            query_ptr = q_stop

        return losses, logits_cache

    # ------------------------------------------------------------------
    def predict_scores(self, bundle: ContextBundle, idx: np.ndarray) -> np.ndarray:
        if self._task is None or self._logits_cache is None:
            raise RuntimeError("predict_scores called before fit")
        idx = np.asarray(idx, dtype=np.int64)
        return self._task.scores(self._logits_cache[idx])

    def predict_logits(self, bundle: ContextBundle, idx: np.ndarray) -> np.ndarray:
        if self._logits_cache is None:
            raise RuntimeError("predict_logits called before fit")
        return self._logits_cache[np.asarray(idx, dtype=np.int64)]
