"""Model interfaces and the shared training loop.

Two families of models exist in this reproduction:

* **Context models** (SLIM, TGAT, DySAT, GraphMixer, DyGFormer, FreeDyG):
  the prediction at a query is a pure function of the materialised context
  (:class:`~repro.models.context.ContextBundle`), so they train with
  standard shuffled minibatches.
* **Memory models** (JODIE, TGN, SLADE): they carry per-node state that
  evolves along the stream, so training replays chronological batches; they
  implement :class:`StreamModel` directly.
"""

from __future__ import annotations

from abc import abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.nn.layers import Module
from repro.nn.optim import Adam, clip_grad_norm
from repro.nn.tensor import Tensor, no_grad
from repro.streams.batching import minibatch_indices
from repro.tasks.base import Task
from repro.models.context import ContextBundle
from repro.utils.logging import get_logger
from repro.utils.rng import new_rng

logger = get_logger("models")


@dataclass
class ModelConfig:
    """Hyperparameters shared across all TGNN implementations."""

    hidden_dim: int = 64
    num_layers: int = 2
    dropout: float = 0.1
    time_dim: int = 16
    lr: float = 1e-3
    weight_decay: float = 0.0
    epochs: int = 30
    batch_size: int = 256
    patience: int = 5
    grad_clip: float = 5.0
    seed: int = 0
    # SLIM-specific knobs kept here so sweeps can treat configs uniformly.
    skip_weight: float = 0.2
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.hidden_dim <= 0 or self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("hidden_dim, epochs, batch_size must be positive")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {self.dropout}")


@dataclass
class FitHistory:
    """Per-epoch training diagnostics returned by ``fit``."""

    train_losses: List[float] = field(default_factory=list)
    val_scores: List[float] = field(default_factory=list)
    best_epoch: int = -1
    best_val_score: float = float("-inf")


class StreamModel(Module):
    """Common interface: fit on a bundle + task, then score query subsets."""

    name: str = "stream-model"

    @abstractmethod
    def fit(
        self,
        bundle: ContextBundle,
        task: Task,
        train_idx: np.ndarray,
        val_idx: Optional[np.ndarray] = None,
    ) -> FitHistory: ...

    @abstractmethod
    def predict_scores(self, bundle: ContextBundle, idx: np.ndarray) -> np.ndarray:
        """Metric-ready scores for the queries at ``idx`` (uses task.scores)."""


class ContextModel(StreamModel):
    """Base for models whose prediction depends only on the query context.

    Subclasses implement :meth:`encode` mapping a batch of query indices to
    representations (B, hidden_dim); the decoder and training loop live here.
    """

    def __init__(self, config: ModelConfig) -> None:
        super().__init__()
        self.config = config
        self._task: Optional[Task] = None
        self._rng = new_rng(config.seed)

    # -- subclass API ---------------------------------------------------
    @abstractmethod
    def encode(self, bundle: ContextBundle, idx: np.ndarray) -> Tensor:
        """Dynamic node representations h_i(t) for the queries at ``idx``."""

    @abstractmethod
    def build_decoder(self, output_dim: int) -> Module:
        """Create the task decoder (called once, at the start of fit)."""

    # -- shared machinery -------------------------------------------------
    def forward_queries(self, bundle: ContextBundle, idx: np.ndarray) -> Tensor:
        representations = self.encode(bundle, idx)
        return self.decoder(representations)

    def fit(
        self,
        bundle: ContextBundle,
        task: Task,
        train_idx: np.ndarray,
        val_idx: Optional[np.ndarray] = None,
    ) -> FitHistory:
        train_idx = np.asarray(train_idx, dtype=np.int64)
        if train_idx.size == 0:
            raise ValueError("fit received an empty training index set")
        self.bind_task(task)
        config = self.config
        optimizer = Adam(
            self.parameters(), lr=config.lr, weight_decay=config.weight_decay
        )
        history = FitHistory()
        best_state: Optional[Dict[str, np.ndarray]] = None
        stale = 0
        for epoch in range(config.epochs):
            self.train()
            epoch_losses = []
            for rows in minibatch_indices(
                len(train_idx), config.batch_size, shuffle=True, rng=self._rng
            ):
                idx = train_idx[rows]
                optimizer.zero_grad()
                logits = self.forward_queries(bundle, idx)
                loss = task.loss(logits, idx)
                loss.backward()
                clip_grad_norm(self.parameters(), config.grad_clip)
                optimizer.step()
                epoch_losses.append(loss.item())
            history.train_losses.append(float(np.mean(epoch_losses)))

            if val_idx is not None and len(val_idx):
                score = self._validation_score(bundle, task, np.asarray(val_idx))
                history.val_scores.append(score)
                if score > history.best_val_score + 1e-12:
                    history.best_val_score = score
                    history.best_epoch = epoch
                    best_state = self.state_dict()
                    stale = 0
                else:
                    stale += 1
                    if stale > config.patience:
                        break
        if best_state is not None:
            self.load_state_dict(best_state)
        return history

    def _validation_score(
        self, bundle: ContextBundle, task: Task, val_idx: np.ndarray
    ) -> float:
        """Validation metric; falls back to negative loss when the metric is
        undefined on the slice (e.g., one-class AUC)."""
        self.eval()
        scores = self.predict_scores(bundle, val_idx)
        try:
            return task.evaluate(scores, val_idx)
        except ValueError:
            with no_grad():
                logits = self.forward_queries(bundle, val_idx)
                return -task.loss(logits, val_idx).item()

    def bind_task(self, task: Task) -> "ContextModel":
        """Attach a task for score conversion without (re)training.

        A model restored from a serialized artifact (``repro.serving``) has
        its weights — including the decoder's — but no task; binding one
        enables :meth:`predict_scores`.  The decoder is built here only if
        the model never had one (fresh, un-fitted instances).
        """
        self._task = task
        if not hasattr(self, "decoder"):
            self.decoder = self.build_decoder(task.output_dim)
        return self

    def predict_scores(self, bundle: ContextBundle, idx: np.ndarray) -> np.ndarray:
        if self._task is None:
            raise RuntimeError("predict_scores called before fit")
        idx = np.asarray(idx, dtype=np.int64)
        self.eval()
        outputs = []
        with no_grad():
            for start in range(0, len(idx), self.config.batch_size):
                chunk = idx[start : start + self.config.batch_size]
                logits = self.forward_queries(bundle, chunk)
                outputs.append(logits.data)
        logits_all = (
            np.concatenate(outputs, axis=0) if outputs else np.zeros((0, 1))
        )
        return self._task.scores(logits_all)

    def predict_logits(self, bundle: ContextBundle, idx: np.ndarray) -> np.ndarray:
        """Raw decoder outputs (used by qualitative analyses)."""
        idx = np.asarray(idx, dtype=np.int64)
        self.eval()
        outputs = []
        with no_grad():
            for start in range(0, len(idx), self.config.batch_size):
                chunk = idx[start : start + self.config.batch_size]
                outputs.append(self.forward_queries(bundle, chunk).data)
        return np.concatenate(outputs, axis=0)

    def representations(self, bundle: ContextBundle, idx: np.ndarray) -> np.ndarray:
        """Dynamic node representations (used by Fig. 14's analysis)."""
        idx = np.asarray(idx, dtype=np.int64)
        self.eval()
        outputs = []
        with no_grad():
            for start in range(0, len(idx), self.config.batch_size):
                chunk = idx[start : start + self.config.batch_size]
                outputs.append(self.encode(bundle, chunk).data)
        return np.concatenate(outputs, axis=0)


def evaluate_model(
    model: StreamModel, bundle: ContextBundle, task: Task, idx: np.ndarray
) -> float:
    """Metric of ``model`` on the query subset ``idx``."""
    scores = model.predict_scores(bundle, idx)
    return task.evaluate(scores, np.asarray(idx))
