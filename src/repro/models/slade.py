"""SLADE baseline (Lee et al., KDD 2024) — self-supervised anomaly scoring.

SLADE detects dynamic anomalies *without label supervision* by monitoring
two self-supervised signals over a TGN-style node memory:

* **temporal drift** — a node whose updated memory moves far from its
  previous memory is deviating from its long-term pattern;
* **memory generation error** — a predictor is trained to reconstruct the
  node's current interaction message from its previous memory; normal
  behaviour is predictable, anomalous behaviour is not.

Training minimises a contrastive drift loss plus the generation loss over
the stream (assumed mostly normal).  The anomaly score at query time is an
exponential moving average of the two discrepancies, so it rises while a
node behaves abnormally and decays back afterwards — the behaviour shown in
the paper's Fig. 13.  Only used for the dynamic anomaly detection task.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.features.time_encoding import TimeEncoder
from repro.models.base import FitHistory, ModelConfig
from repro.models.context import ContextBundle
from repro.models.memory import MemoryModel, tbatch_levels
from repro.nn.layers import MLP
from repro.nn.rnn import GRUCell
from repro.nn.tensor import Tensor, concat, stack
from repro.tasks.base import Task
from repro.utils.rng import spawn_rngs


class SLADE(MemoryModel):
    name = "SLADE"

    def __init__(
        self,
        feature_name: str,
        feature_dim: int,
        edge_feature_dim: int,
        num_nodes: int,
        config: Optional[ModelConfig] = None,
        score_decay: float = 0.7,
    ) -> None:
        super().__init__(feature_name, feature_dim, edge_feature_dim, num_nodes, config)
        d_h = self.config.hidden_dim
        d_t = self.config.time_dim
        rng_g, rng_p, _ = spawn_rngs(self.config.seed, 3)
        self.time_encoder = TimeEncoder(d_t)
        message_dim = d_h + edge_feature_dim + d_t
        self.memory_updater = GRUCell(message_dim, d_h, rng=rng_g)
        self.generator = MLP([d_h, d_h, message_dim], rng=rng_p)
        self.score_decay = score_decay
        self._scores = np.zeros(num_nodes)
        self._time_scale = 1.0

    def build_decoder(self, output_dim: int) -> None:
        # SLADE has no supervised decoder; scores come from the SSL signals.
        if output_dim != 2:
            raise ValueError("SLADE only supports the binary anomaly task")

    def _reset_memory(self) -> None:
        super()._reset_memory()
        self._scores = np.zeros(self.num_nodes)

    # ------------------------------------------------------------------
    def fit(
        self,
        bundle: ContextBundle,
        task: Task,
        train_idx: np.ndarray,
        val_idx: Optional[np.ndarray] = None,
    ) -> FitHistory:
        """Unsupervised: labels in ``train_idx`` are never read; the indices
        only mark the stream region available for SSL training."""
        self._task = task
        self.build_decoder(task.output_dim)
        from repro.nn.optim import Adam  # local import avoids a cycle
        from repro.nn.tensor import no_grad

        optimizer = Adam(self.parameters(), lr=self.config.lr)
        history = FitHistory()
        for epoch in range(self.config.epochs):
            self.train()
            losses, logits_cache = self._replay_epoch(bundle, task, set(), optimizer)
            history.train_losses.append(float(np.mean(losses)) if losses else 0.0)
            # Early-stopping criterion is the SSL loss itself (no labels).
            score = -history.train_losses[-1]
            history.val_scores.append(score)
            if score > history.best_val_score + 1e-12:
                history.best_val_score = score
                history.best_epoch = epoch
        self.eval()
        with no_grad():
            _, self._logits_cache = self._replay_epoch(bundle, task, set(), None)
        return history

    # ------------------------------------------------------------------
    def update_block(
        self, bundle: ContextBundle, edge_slice: slice, read_row
    ) -> Tuple[Dict[int, Tensor], Optional[Tensor]]:
        ctdg = bundle.ctdg
        src = ctdg.src[edge_slice]
        dst = ctdg.dst[edge_slice]
        times = ctdg.times[edge_slice]
        if self._time_scale == 1.0 and ctdg.end_time > ctdg.start_time:
            self._time_scale = (ctdg.end_time - ctdg.start_time) / max(
                ctdg.num_edges, 1
            )
        feats = (
            ctdg.edge_features[edge_slice]
            if ctdg.edge_features is not None
            else np.zeros((len(src), 0))
        )
        pending: Dict[int, Tensor] = {}
        loss_terms = []

        def row(node: int) -> Tensor:
            got = pending.get(node)
            return got if got is not None else read_row(node)

        for level in tbatch_levels(src, dst):
            u, v, t, e_f = src[level], dst[level], times[level], feats[level]
            h_u = stack([row(int(n)) for n in u])
            h_v = stack([row(int(n)) for n in v])
            dt_u = self.time_encoder((t - self._last_update[u]) / self._time_scale)
            msg_u = concat([h_v, Tensor(np.concatenate([e_f, dt_u], axis=-1))], axis=-1)
            new_u = self.memory_updater(msg_u, h_u)

            # Generation loss: previous memory should predict the message.
            predicted = self.generator(h_u)
            gen_err = ((predicted - msg_u.detach()) ** 2).mean(axis=1)
            # Contrastive drift: own update close, shuffled update far.
            permutation = self._rng.permutation(len(level))
            pos = (new_u * h_u).sum(axis=1) * (1.0 / self.config.hidden_dim)
            neg = (new_u * h_u.detach()[permutation]).sum(axis=1) * (
                1.0 / self.config.hidden_dim
            )
            from repro.nn import functional as F

            contrast = (
                -(F.log(F.sigmoid(pos) + 1e-9)).mean()
                - (F.log(1.0 - F.sigmoid(neg) + 1e-9)).mean()
            )
            loss_terms.append(gen_err.mean() + contrast * 0.1)

            # Anomaly score update (detached numpy arithmetic).
            drift = 1.0 - _row_cosine(new_u.data, h_u.data)
            gen_np = gen_err.data
            instant = drift + gen_np / (1.0 + gen_np)
            for position, node in enumerate(u):
                node = int(node)
                self._scores[node] = (
                    self.score_decay * self._scores[node]
                    + (1.0 - self.score_decay) * instant[position]
                )
            for position, node in enumerate(u):
                pending[int(node)] = new_u[position]
            # Destination side: memory update only (items carry no state label).
            dt_v = self.time_encoder((t - self._last_update[v]) / self._time_scale)
            msg_v = concat(
                [h_u.detach(), Tensor(np.concatenate([e_f, dt_v], axis=-1))], axis=-1
            )
            new_v = self.memory_updater(msg_v, h_v)
            for position, node in enumerate(v):
                pending[int(node)] = new_v[position]

        total = loss_terms[0]
        for term in loss_terms[1:]:
            total = total + term
        return pending, total * (1.0 / len(loss_terms))

    # ------------------------------------------------------------------
    def decode(self, bundle: ContextBundle, idx: np.ndarray, read_row) -> Tensor:
        """Pseudo-logits [0, score] so AnomalyTask.scores is monotone in the
        anomaly score."""
        nodes = bundle.queries.nodes[idx]
        scores = self._scores[nodes]
        return Tensor(np.stack([np.zeros_like(scores), scores], axis=1))


def _row_cosine(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    denom = np.linalg.norm(a, axis=1) * np.linalg.norm(b, axis=1)
    return np.where(denom > 0, (a * b).sum(axis=1) / np.maximum(denom, 1e-12), 0.0)
