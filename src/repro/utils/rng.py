"""Deterministic random-number management.

Every stochastic component in the library receives an explicit
``numpy.random.Generator``.  Components never touch global numpy state, so a
single top-level seed makes an entire experiment reproducible, and two
components never share a stream (which would couple their randomness).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``Generator``; pass through if one is given.

    ``None`` yields an OS-seeded generator (non-deterministic); an int yields
    a PCG64 stream seeded with it.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Split one seed into ``n`` statistically independent generators."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    root = np.random.SeedSequence(seed if isinstance(seed, int) else None)
    return [np.random.default_rng(s) for s in root.spawn(n)]


class RngRegistry:
    """Named random streams derived from one master seed.

    Components ask for streams by name (``registry.get("node2vec")``); the
    same name always returns the same stream object, so repeated lookups do
    not restart sequences, while distinct names are independent.
    """

    def __init__(self, seed: Optional[int] = 0) -> None:
        self._seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> Optional[int]:
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator registered under ``name``."""
        if name not in self._streams:
            # Derive a child seed from the master seed and the name so that
            # the stream for a given name is stable across runs and across
            # the order in which names are first requested.  Python's built-in
            # ``hash`` is salted per process, so use a stable digest instead.
            digest = int.from_bytes(
                hashlib.sha256(name.encode("utf-8")).digest()[:8], "little"
            )
            self._streams[name] = np.random.default_rng(
                np.random.SeedSequence(entropy=self._seed or 0, spawn_key=(digest,))
            )
        return self._streams[name]

    def reset(self) -> None:
        """Drop all derived streams; subsequent ``get`` calls restart them."""
        self._streams.clear()
