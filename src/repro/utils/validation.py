"""Argument-validation helpers raising uniform, informative errors."""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np


def check_positive(name: str, value: Union[int, float], *, strict: bool = True) -> None:
    """Raise ``ValueError`` unless ``value`` is positive (or >= 0 when not strict)."""
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def check_finite(name: str, array: np.ndarray) -> None:
    """Raise ``ValueError`` if ``array`` contains NaN or infinity."""
    if not np.all(np.isfinite(array)):
        bad = int(np.sum(~np.isfinite(array)))
        raise ValueError(f"{name} contains {bad} non-finite entries")


def check_shape(
    name: str, array: np.ndarray, expected: Sequence[Union[int, None]]
) -> Tuple[int, ...]:
    """Check ``array.shape`` against ``expected`` (``None`` = any size).

    Returns the actual shape for convenience.
    """
    shape = np.shape(array)
    if len(shape) != len(expected):
        raise ValueError(
            f"{name} must have {len(expected)} dimensions, got shape {shape}"
        )
    for axis, (actual, want) in enumerate(zip(shape, expected)):
        if want is not None and actual != want:
            raise ValueError(
                f"{name} axis {axis} must have size {want}, got shape {shape}"
            )
    return shape
