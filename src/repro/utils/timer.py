"""Wall-clock timing helpers used by the efficiency benchmarks (Fig. 10/11)."""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Tuple


class Timer:
    """Accumulating stopwatch with named sections.

    Example
    -------
    >>> t = Timer()
    >>> with t.section("inference"):
    ...     pass
    >>> t.total("inference") >= 0.0
    True
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._totals[name] = self._totals.get(name, 0.0) + elapsed
            self._counts[name] = self._counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Total seconds accumulated under ``name`` (0.0 if never entered)."""
        return self._totals.get(name, 0.0)

    def count(self, name: str) -> int:
        return self._counts.get(name, 0)

    def mean(self, name: str) -> float:
        """Mean seconds per entry of ``name`` (0.0 if never entered)."""
        c = self._counts.get(name, 0)
        return self._totals.get(name, 0.0) / c if c else 0.0

    def as_dict(self) -> Dict[str, float]:
        return dict(self._totals)

    def items(self) -> List[Tuple[str, float]]:
        return sorted(self._totals.items())


def timed(fn: Callable, *args, repeats: int = 1, **kwargs) -> Tuple[object, float]:
    """Run ``fn`` ``repeats`` times; return (last result, mean seconds/call)."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    result = None
    start = time.perf_counter()
    for _ in range(repeats):
        result = fn(*args, **kwargs)
    elapsed = (time.perf_counter() - start) / repeats
    return result, elapsed
