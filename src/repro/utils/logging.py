"""Minimal logging setup shared by the library, examples, and benchmarks."""

from __future__ import annotations

import logging
import sys

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"
_configured = False


def get_logger(name: str, level: int = logging.INFO) -> logging.Logger:
    """Return a namespaced logger, configuring the root handler once.

    The library never configures logging at import time; the first explicit
    ``get_logger`` call installs a single stderr handler, so applications that
    configure logging themselves are left untouched.
    """
    global _configured
    if not _configured:
        root = logging.getLogger("repro")
        if not root.handlers:
            handler = logging.StreamHandler(sys.stderr)
            handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
            root.addHandler(handler)
            root.setLevel(level)
        _configured = True
    full = name if name.startswith("repro") else f"repro.{name}"
    return logging.getLogger(full)
