"""Minimal logging setup shared by the library, examples, and benchmarks."""

from __future__ import annotations

import logging
import sys
from typing import Optional

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"
_configured = False


def get_logger(name: str, level: Optional[int] = None) -> logging.Logger:
    """Return a namespaced logger, configuring the root handler once.

    The library never configures logging at import time; the first explicit
    ``get_logger`` call installs a single stderr handler on the ``repro``
    root (at INFO), so applications that configure logging themselves are
    left untouched.

    ``level``, when given, is applied to the *returned named logger* on
    every call — not just the first one (an earlier version latched the
    whole setup behind a once-flag, silently ignoring ``level`` for every
    caller after the first).
    """
    global _configured
    if not _configured:
        root = logging.getLogger("repro")
        if not root.handlers:
            handler = logging.StreamHandler(sys.stderr)
            handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
            root.addHandler(handler)
            root.setLevel(logging.INFO)
        _configured = True
    full = name if name.startswith("repro") else f"repro.{name}"
    logger = logging.getLogger(full)
    if level is not None:
        logger.setLevel(level)
    return logger
