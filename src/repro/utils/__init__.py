"""Shared low-level utilities: seeding, timing, logging, validation.

These helpers are deliberately dependency-free (numpy only) so every other
subpackage can import them without cycles.
"""

from repro.utils.logging import get_logger
from repro.utils.rng import RngRegistry, new_rng, spawn_rngs
from repro.utils.timer import Timer, timed
from repro.utils.validation import (
    check_finite,
    check_positive,
    check_probability,
    check_shape,
)

__all__ = [
    "RngRegistry",
    "new_rng",
    "spawn_rngs",
    "Timer",
    "timed",
    "get_logger",
    "check_finite",
    "check_positive",
    "check_probability",
    "check_shape",
]
