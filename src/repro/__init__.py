"""SPLASH reproduction — node property prediction on edge streams under
distribution shifts (Lee, Kwon, Moon & Shin, ICDE 2025).

Subpackages
-----------
``repro.nn``         numpy autograd + neural-network substrate
``repro.streams``    CTDG edge streams, snapshots, replay, splitting
``repro.features``   R/P/S feature augmentation, propagation, node2vec
``repro.selection``  automatic feature selection via linear risks
``repro.models``     SLIM and all baseline TGNNs
``repro.tasks``      classification / anomaly / affinity tasks
``repro.datasets``   synthetic dataset generators (see DESIGN.md)
``repro.pipeline``   end-to-end SPLASH and the experiment harness
``repro.metrics``    AUC, F1, NDCG@k, silhouette
``repro.analysis``   t-SNE, drift diagnostics, efficiency accounting
``repro.serving``    online serving: incremental store, prediction service
``repro.adapt``      drift-aware continual adaptation of the serving loop

Public API
----------
The blessed entry points are re-exported here (and pinned by
``tests/test_public_api.py``): the pipeline front door (:class:`Splash`,
:class:`SplashConfig`, :class:`ExecutionConfig`, :func:`prepare_experiment`),
the serving front door (:func:`serve` + :class:`ServingConfig`, plus
:class:`PredictionService` for direct use), and the array-backend
registry (``available_backends`` / ``get_backend`` / ``register_backend`` /
``set_default_backend`` / ``use_backend``).  Everything else is reachable
through the subpackages but carries no stability promise.

Quickstart
----------
>>> from repro.datasets import email_eu_like
>>> from repro.pipeline import Splash, SplashConfig
>>> splash = Splash(SplashConfig())
>>> splash.fit(email_eu_like(seed=0))        # doctest: +SKIP
>>> splash.evaluate()                        # doctest: +SKIP
"""

from repro.nn.backend import (
    available_backends,
    get_backend,
    register_backend,
    set_default_backend,
    use_backend,
)
from repro.pipeline import (
    ExecutionConfig,
    Splash,
    SplashConfig,
    prepare_experiment,
)
from repro.serving import PredictionService, ServingConfig, serve

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # pipeline front door
    "ExecutionConfig",
    "Splash",
    "SplashConfig",
    "prepare_experiment",
    # serving front door
    "PredictionService",
    "ServingConfig",
    "serve",
    # array-backend registry
    "available_backends",
    "get_backend",
    "register_backend",
    "set_default_backend",
    "use_backend",
]
