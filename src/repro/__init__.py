"""SPLASH reproduction — node property prediction on edge streams under
distribution shifts (Lee, Kwon, Moon & Shin, ICDE 2025).

Subpackages
-----------
``repro.nn``         numpy autograd + neural-network substrate
``repro.streams``    CTDG edge streams, snapshots, replay, splitting
``repro.features``   R/P/S feature augmentation, propagation, node2vec
``repro.selection``  automatic feature selection via linear risks
``repro.models``     SLIM and all baseline TGNNs
``repro.tasks``      classification / anomaly / affinity tasks
``repro.datasets``   synthetic dataset generators (see DESIGN.md)
``repro.pipeline``   end-to-end SPLASH and the experiment harness
``repro.metrics``    AUC, F1, NDCG@k, silhouette
``repro.analysis``   t-SNE, drift diagnostics, efficiency accounting
``repro.serving``    online serving: incremental store, prediction service
``repro.adapt``      drift-aware continual adaptation of the serving loop

Quickstart
----------
>>> from repro.datasets import email_eu_like
>>> from repro.pipeline import Splash, SplashConfig
>>> splash = Splash(SplashConfig())
>>> splash.fit(email_eu_like(seed=0))        # doctest: +SKIP
>>> splash.evaluate()                        # doctest: +SKIP
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
