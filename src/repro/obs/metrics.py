"""Process-local metrics registry: counters, gauges, log-scale histograms.

The registry is the shared vocabulary for every runtime layer (replay,
serving, persistence, adaptation).  Metrics are identified by a name plus
an optional label set; ``registry.counter("adapt.refit", outcome="promoted")``
returns the same instrument on every call, so hot paths can either cache
the instrument or go through the one-dict lookup.

Histograms use *fixed log-scale bucket bounds* so percentile reads are
O(buckets) regardless of how many observations were recorded, and so two
histograms with the same bounds merge by elementwise count addition —
exactly associative, which is what a sharded serving fleet needs to pool
per-worker latency distributions without approximation drift.
"""

from __future__ import annotations

import math
import os
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PooledRegistryView",
    "DEFAULT_LATENCY_BOUNDS",
    "PAYLOAD_SCHEMA",
    "PAYLOAD_VERSION",
    "log_bucket_bounds",
]

LabelItems = Tuple[Tuple[str, str], ...]

#: Schema identifier / version stamped into every registry payload so a
#: parent process can reject payloads from an incompatible worker build.
PAYLOAD_SCHEMA = "repro.obs.metrics"
PAYLOAD_VERSION = 1


def log_bucket_bounds(
    lo: float = 1e-6,
    hi: float = 100.0,
    per_decade: int = 4,
) -> Tuple[float, ...]:
    """Geometric bucket upper bounds covering ``[lo, hi]``.

    Consecutive bounds differ by a factor of ``10 ** (1 / per_decade)``;
    with the defaults that is ~1.78x, i.e. any in-range observation is
    reported within one bucket ratio of its true value.
    """
    if lo <= 0.0 or hi <= lo:
        raise ValueError("log_bucket_bounds requires 0 < lo < hi")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    n = math.ceil(per_decade * math.log10(hi / lo))
    bounds = [lo * 10.0 ** (i / per_decade) for i in range(n + 1)]
    # Guard against float round-off leaving the last bound a hair under hi.
    if bounds[-1] < hi:
        bounds.append(bounds[-1] * 10.0 ** (1.0 / per_decade))
    return tuple(bounds)


#: Default bounds for latency-in-seconds histograms: 1 microsecond to 100
#: seconds at 4 buckets per decade (33 buckets, ratio ~1.78).
DEFAULT_LATENCY_BOUNDS: Tuple[float, ...] = log_bucket_bounds(1e-6, 100.0, 4)


class Counter:
    """Monotonically increasing count (events processed, promotions, ...)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("Counter.inc amount must be >= 0")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Last-write-wins instantaneous value (drift score, durable offset)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bound histogram with O(buckets) percentile reads.

    Bucket ``i`` covers ``(bounds[i-1], bounds[i]]``; one extra overflow
    bucket holds observations above ``bounds[-1]``.  Percentiles use the
    lower order statistic (``numpy.percentile(..., method="lower")``) and
    report the geometric midpoint of the bucket holding that statistic,
    so for observations inside ``[bounds[0], bounds[-1]]`` the estimate
    is within half a bucket ratio of the true order statistic.
    """

    __slots__ = ("name", "labels", "bounds", "_counts", "_total", "_sum", "_lock")

    def __init__(
        self,
        name: str = "",
        labels: LabelItems = (),
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        resolved = tuple(bounds) if bounds is not None else DEFAULT_LATENCY_BOUNDS
        if len(resolved) < 2:
            raise ValueError("Histogram needs at least two bucket bounds")
        if any(b <= a for a, b in zip(resolved, resolved[1:])):
            raise ValueError("Histogram bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds = resolved
        self._counts = [0] * (len(resolved) + 1)
        self._total = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float, count: int = 1) -> None:
        """Record ``count`` observations of ``value`` (weighted observe)."""
        if count <= 0:
            return
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += count
            self._total += count
            self._sum += value * count

    @property
    def count(self) -> int:
        return self._total

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def bucket_counts(self) -> Tuple[int, ...]:
        with self._lock:
            return tuple(self._counts)

    def _bucket_estimate(self, idx: int) -> float:
        if idx <= 0:
            return self.bounds[0]
        if idx >= len(self.bounds):
            return self.bounds[-1]
        return math.sqrt(self.bounds[idx - 1] * self.bounds[idx])

    def percentiles(self, percentiles: Iterable[float]) -> List[float]:
        """Estimate several percentiles from one cumulative pass."""
        ps = list(percentiles)
        if any(p < 0.0 or p > 100.0 for p in ps):
            raise ValueError("percentiles must be in [0, 100]")
        with self._lock:
            counts = list(self._counts)
            total = self._total
        if total == 0:
            return [0.0 for _ in ps]
        # Target the lower order statistic for each percentile, resolved in
        # ascending rank order against a single cumulative sweep.
        order = sorted(range(len(ps)), key=lambda i: ps[i])
        ranks = [int((ps[i] / 100.0) * (total - 1)) for i in order]
        out = [0.0] * len(ps)
        cum = 0
        bucket = 0
        for slot, rank in zip(order, ranks):
            while bucket < len(counts) and cum + counts[bucket] <= rank:
                cum += counts[bucket]
                bucket += 1
            out[slot] = self._bucket_estimate(min(bucket, len(counts) - 1))
        return out

    def percentile(self, percentile: float) -> float:
        return self.percentiles([percentile])[0]

    def merge(self, other: "Histogram") -> None:
        """Add ``other``'s counts into this histogram (same bounds only)."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        with other._lock:
            counts = list(other._counts)
            total = other._total
            summed = other._sum
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._total += total
            self._sum += summed

    def copy(self) -> "Histogram":
        clone = Histogram(self.name, self.labels, self.bounds)
        with self._lock:
            clone._counts = list(self._counts)
            clone._total = self._total
            clone._sum = self._sum
        return clone

    def _merge_raw(self, counts: Sequence[int], total: int, summed: float) -> None:
        """Elementwise-add raw bucket counts (payload merge fast path)."""
        if len(counts) != len(self._counts):
            raise ValueError(
                "histogram bucket count mismatch: "
                f"{len(counts)} != {len(self._counts)}"
            )
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._total += total
            self._sum += summed


def _label_key(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Get-or-create home for every (name, labels) instrument."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelItems], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelItems], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelItems], Histogram] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            inst = self._counters.get(key)
            if inst is None:
                inst = self._counters[key] = Counter(name, key[1])
        return inst

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            inst = self._gauges.get(key)
            if inst is None:
                inst = self._gauges[key] = Gauge(name, key[1])
        return inst

    def histogram(
        self,
        name: str,
        bounds: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            inst = self._histograms.get(key)
            if inst is None:
                inst = self._histograms[key] = Histogram(name, key[1], bounds)
        return inst

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def instruments(self, kind: str, name: str, **labels: object) -> List:
        """Existing instruments matching ``name`` and a label *subset*.

        ``kind`` is ``"counter"``, ``"gauge"``, or ``"histogram"``.  Unlike
        the get-or-create accessors this never creates: SLO rules use it to
        pool e.g. every ``obs.span.seconds{span=serving.score, ...}`` series
        regardless of which extra labels (``proc``, ...) pooling added.
        """
        tables = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        try:
            table = tables[kind]
        except KeyError:
            raise ValueError(
                f"kind must be one of {sorted(tables)}, got {kind!r}"
            ) from None
        with self._lock:
            values = list(table.values())
        if not labels:
            return [v for v in values if v.name == name]
        want = set(_label_key(labels))
        return [
            v for v in values if v.name == name and want.issubset(set(v.labels))
        ]

    # -- cross-process pooling -------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """Serialise every instrument into a JSON-safe, versioned payload.

        The payload is the wire format for cross-process pooling: a worker
        calls ``to_payload()`` just before exit and ships the dict back to
        the parent (picklable and ``json.dumps``-safe), which folds it into
        its own registry with :meth:`merge_payload`.  Histograms carry raw
        bucket counts plus their bounds, so the merge stays the exact
        elementwise addition :meth:`Histogram.merge` performs in-process.
        """
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        payload: Dict[str, object] = {
            "schema": PAYLOAD_SCHEMA,
            "version": PAYLOAD_VERSION,
            "pid": os.getpid(),
            "counters": [[c.name, [list(kv) for kv in c.labels], c.value]
                         for c in counters],
            "gauges": [[g.name, [list(kv) for kv in g.labels], g.value]
                       for g in gauges],
            "histograms": [],
        }
        hist_rows = payload["histograms"]
        assert isinstance(hist_rows, list)
        for h in histograms:
            with h._lock:
                counts = list(h._counts)
                total = h._total
                summed = h._sum
            hist_rows.append(
                [
                    h.name,
                    [list(kv) for kv in h.labels],
                    list(h.bounds),
                    counts,
                    total,
                    summed,
                ]
            )
        return payload

    def merge_payload(
        self,
        payload: Dict[str, object],
        extra_labels: Optional[Dict[str, object]] = None,
    ) -> None:
        """Fold a :meth:`to_payload` dict into this registry.

        Counters add, gauges take the payload's value (last write wins,
        matching in-process semantics), histograms merge elementwise —
        exactly associative, so pooling N workers in any order equals one
        combined registry.  ``extra_labels`` (e.g. ``{"proc": "shard0"}``)
        are appended to every instrument's label set so per-worker series
        stay distinguishable after pooling.
        """
        if payload.get("schema") != PAYLOAD_SCHEMA:
            raise ValueError(
                f"unknown metrics payload schema {payload.get('schema')!r}"
            )
        if payload.get("version") != PAYLOAD_VERSION:
            raise ValueError(
                f"unsupported metrics payload version {payload.get('version')!r}"
            )
        extra = {str(k): v for k, v in (extra_labels or {}).items()}

        def _labels(items) -> Dict[str, object]:
            merged: Dict[str, object] = {k: v for k, v in items}
            merged.update(extra)
            return merged

        for name, labels, value in payload.get("counters", ()):  # type: ignore[misc]
            self.counter(name, **_labels(labels)).inc(float(value))
        for name, labels, value in payload.get("gauges", ()):  # type: ignore[misc]
            self.gauge(name, **_labels(labels)).set(float(value))
        for row in payload.get("histograms", ()):  # type: ignore[union-attr]
            name, labels, bounds, counts, total, summed = row
            bounds = tuple(float(b) for b in bounds)
            inst = self.histogram(name, bounds=bounds, **_labels(labels))
            if inst.bounds != bounds:
                raise ValueError(
                    f"histogram {name!r} bounds mismatch: payload has "
                    f"{len(bounds)} bounds, registry has {len(inst.bounds)}"
                )
            inst._merge_raw([int(c) for c in counts], int(total), float(summed))

    def merge(
        self,
        other: "MetricsRegistry",
        extra_labels: Optional[Dict[str, object]] = None,
    ) -> None:
        """In-process pooling: fold ``other``'s instruments into this registry."""
        self.merge_payload(other.to_payload(), extra_labels=extra_labels)

    # -- export ----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict view of every instrument (for logging / tests)."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        out: Dict[str, object] = {"counters": {}, "gauges": {}, "histograms": {}}
        for c in counters:
            out["counters"][_instrument_id(c.name, c.labels)] = c.value
        for g in gauges:
            out["gauges"][_instrument_id(g.name, g.labels)] = g.value
        for h in histograms:
            p50, p99 = h.percentiles([50.0, 99.0])
            out["histograms"][_instrument_id(h.name, h.labels)] = {
                "count": h.count,
                "sum": h.sum,
                "p50": p50,
                "p99": p99,
            }
        return out

    def render_prometheus(self) -> str:
        """Prometheus text-exposition snapshot of the whole registry."""
        with self._lock:
            counters = sorted(
                self._counters.values(), key=lambda m: (m.name, m.labels)
            )
            gauges = sorted(self._gauges.values(), key=lambda m: (m.name, m.labels))
            histograms = sorted(
                self._histograms.values(), key=lambda m: (m.name, m.labels)
            )
        lines: List[str] = []
        seen_types: set = set()

        def type_line(metric_name: str, kind: str) -> None:
            if metric_name not in seen_types:
                seen_types.add(metric_name)
                lines.append(f"# TYPE {metric_name} {kind}")

        for c in counters:
            metric = _prom_name(c.name) + "_total"
            type_line(metric, "counter")
            lines.append(f"{metric}{_prom_labels(c.labels)} {_prom_value(c.value)}")
        for g in gauges:
            metric = _prom_name(g.name)
            type_line(metric, "gauge")
            lines.append(f"{metric}{_prom_labels(g.labels)} {_prom_value(g.value)}")
        for h in histograms:
            metric = _prom_name(h.name)
            type_line(metric, "histogram")
            cum = 0
            counts = h.bucket_counts
            for bound, count in zip(h.bounds, counts):
                cum += count
                items = h.labels + (("le", _prom_value(bound)),)
                lines.append(f"{metric}_bucket{_prom_labels(items)} {cum}")
            cum += counts[-1]
            items = h.labels + (("le", "+Inf"),)
            lines.append(f"{metric}_bucket{_prom_labels(items)} {cum}")
            lines.append(f"{metric}_sum{_prom_labels(h.labels)} {_prom_value(h.sum)}")
            lines.append(f"{metric}_count{_prom_labels(h.labels)} {h.count}")
        return "\n".join(lines) + ("\n" if lines else "")


class PooledRegistryView:
    """Registry-shaped façade pooling live worker payloads at read time.

    The cross-process wire format (:meth:`MetricsRegistry.to_payload` /
    :meth:`MetricsRegistry.merge_payload`) pools *final* worker registries
    — a worker ships its payload once, on exit.  A serving fleet needs the
    inverse: workers stay alive indefinitely and the router's ``/metrics``
    must show their *current* state on every scrape.  This view closes
    that gap without inventing a push channel: it holds the router's own
    ``base`` registry plus a ``collect`` callable returning
    ``[(payload, extra_labels), ...]`` — typically one
    ``registry.to_payload()`` fetched over each worker's control pipe —
    and materialises a fresh merged registry per read.  Because payload
    merging is exactly associative, every read equals the one registry a
    single-process deployment would have, with per-worker series kept
    distinguishable by ``extra_labels`` (e.g. ``{"proc": "shard0"}``).

    Implements the registry surface the exposition layer consumes
    (:class:`repro.obs.http.TelemetryServer` and the SLO engine's
    instrument pooling): ``render_prometheus`` / ``instruments`` /
    ``snapshot``.  Reads are O(instruments); mutation goes to the real
    registries, never through this view.
    """

    def __init__(self, base: Optional[MetricsRegistry], collect) -> None:
        self._base = base if base is not None else MetricsRegistry()
        self._collect = collect

    # Mutators pass through to the local base registry (the SLO engine
    # records its health gauge and breach counters into whatever registry
    # it evaluates) — worker-side series stay read-only by construction.
    def counter(self, name: str, **labels: object) -> Counter:
        return self._base.counter(name, **labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._base.gauge(name, **labels)

    def histogram(
        self,
        name: str,
        bounds: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> Histogram:
        return self._base.histogram(name, bounds, **labels)

    def materialise(self) -> MetricsRegistry:
        """One merged point-in-time registry (base + every live payload)."""
        merged = MetricsRegistry()
        merged.merge(self._base)
        for payload, extra_labels in self._collect():
            merged.merge_payload(payload, extra_labels=extra_labels)
        return merged

    def render_prometheus(self) -> str:
        return self.materialise().render_prometheus()

    def instruments(self, kind: str, name: str, **labels: object) -> List:
        return self.materialise().instruments(kind, name, **labels)

    def snapshot(self) -> Dict[str, object]:
        return self.materialise().snapshot()


def _instrument_id(name: str, labels: LabelItems) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{rendered}}}"


def _prom_name(name: str) -> str:
    safe = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if safe and safe[0].isdigit():
        safe = "_" + safe
    return safe


def _prom_labels(labels: LabelItems) -> str:
    if not labels:
        return ""
    body = ",".join(f'{_prom_name(k)}="{v}"' for k, v in labels)
    return "{" + body + "}"


def _prom_value(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)
