"""Summarise / validate ``repro.obs`` JSONL trace files.

Usage::

    python -m repro.obs.summarize trace.jsonl            # latency table
    python -m repro.obs.summarize trace.jsonl --validate # schema check

The latency table aggregates closed spans per span name (count, total,
mean, p50, p99, max — percentiles from the same log-scale histogram the
live registry uses, so offline and online numbers agree).  ``--validate``
enforces the schema contract the obs-smoke CI job gates on: a versioned
header first, every span closed exactly once, per-thread monotonic
timestamps, and end timestamps never before their start.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.obs.metrics import Histogram
from repro.obs.trace import TRACE_SCHEMA, TRACE_SCHEMA_VERSION

__all__ = ["load_events", "main", "render_table", "summarize", "validate_trace"]


@dataclass
class SpanStats:
    name: str
    count: int = 0
    total: float = 0.0
    max: float = 0.0
    hist: Histogram = field(default_factory=Histogram)

    def add(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        if duration > self.max:
            self.max = duration
        self.hist.observe(duration)


def load_events(path: str) -> List[dict]:
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON ({exc})") from exc
    return events


def validate_trace(events: Iterable[dict]) -> List[str]:
    """Return a list of schema violations (empty when the trace is valid)."""
    errors: List[str] = []
    events = list(events)
    if not events:
        return ["trace is empty (missing header)"]
    header = events[0]
    if header.get("type") != "header":
        errors.append("first event is not a header")
    else:
        if header.get("schema") != TRACE_SCHEMA:
            errors.append(f"unknown schema {header.get('schema')!r}")
        if header.get("version") != TRACE_SCHEMA_VERSION:
            errors.append(f"unsupported schema version {header.get('version')!r}")
    open_spans: Dict[int, dict] = {}
    closed: set = set()
    last_ts: Dict[int, float] = {}
    for idx, event in enumerate(events[1:], start=2):
        etype = event.get("type")
        if etype == "header":
            errors.append(f"event {idx}: duplicate header")
            continue
        if etype not in ("span_start", "span_end"):
            errors.append(f"event {idx}: unknown event type {etype!r}")
            continue
        span_id = event.get("span")
        ts = event.get("ts")
        thread = event.get("thread")
        if not isinstance(span_id, int):
            errors.append(f"event {idx}: missing/invalid span id")
            continue
        if not isinstance(ts, (int, float)):
            errors.append(f"event {idx}: missing/invalid ts")
            continue
        if thread in last_ts and ts < last_ts[thread]:
            errors.append(
                f"event {idx}: non-monotonic ts on thread {thread} "
                f"({ts} < {last_ts[thread]})"
            )
        last_ts[thread] = ts
        if etype == "span_start":
            if span_id in open_spans or span_id in closed:
                errors.append(f"event {idx}: duplicate span id {span_id}")
                continue
            parent = event.get("parent")
            if parent is not None and parent not in open_spans:
                errors.append(
                    f"event {idx}: span {span_id} parent {parent} is not open"
                )
            open_spans[span_id] = event
        else:
            start = open_spans.pop(span_id, None)
            if start is None:
                errors.append(f"event {idx}: span_end for unopened span {span_id}")
                continue
            closed.add(span_id)
            if ts < start["ts"]:
                errors.append(
                    f"event {idx}: span {span_id} ends before it starts "
                    f"({ts} < {start['ts']})"
                )
            if event.get("name") != start.get("name"):
                errors.append(
                    f"event {idx}: span {span_id} name mismatch "
                    f"({event.get('name')!r} != {start.get('name')!r})"
                )
    for span_id, start in open_spans.items():
        errors.append(f"span {span_id} ({start.get('name')!r}) never closed")
    return errors


def summarize(events: Iterable[dict]) -> Dict[str, SpanStats]:
    stats: Dict[str, SpanStats] = {}
    for event in events:
        if event.get("type") != "span_end":
            continue
        name = str(event.get("name"))
        duration = float(event.get("dur", 0.0))
        entry = stats.get(name)
        if entry is None:
            entry = stats[name] = SpanStats(name)
        entry.add(duration)
    return stats


def render_table(stats: Dict[str, SpanStats]) -> str:
    header = (
        f"{'span':<28} {'count':>8} {'total_s':>10} {'mean_ms':>10} "
        f"{'p50_ms':>10} {'p99_ms':>10} {'max_ms':>10}"
    )
    lines = [header, "-" * len(header)]
    for name in sorted(stats, key=lambda n: -stats[n].total):
        s = stats[name]
        p50, p99 = s.hist.percentiles([50.0, 99.0])
        mean = s.total / s.count if s.count else 0.0
        lines.append(
            f"{name:<28} {s.count:>8} {s.total:>10.4f} {mean * 1e3:>10.3f} "
            f"{p50 * 1e3:>10.3f} {p99 * 1e3:>10.3f} {s.max * 1e3:>10.3f}"
        )
    if not stats:
        lines.append("(no closed spans)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.summarize",
        description="Summarise or validate a repro.obs JSONL trace file.",
    )
    parser.add_argument("paths", nargs="+", help="trace file(s) to read")
    parser.add_argument(
        "--validate",
        action="store_true",
        help="validate the trace schema instead of only printing the table",
    )
    args = parser.parse_args(argv)

    status = 0
    for path in args.paths:
        try:
            events = load_events(path)
        except (OSError, ValueError) as exc:
            print(f"ERROR: {exc}", file=sys.stderr)
            status = 1
            continue
        if args.validate:
            errors = validate_trace(events)
            if errors:
                status = 1
                print(f"{path}: INVALID ({len(errors)} violation(s))")
                for err in errors:
                    print(f"  - {err}")
            else:
                spans = sum(1 for e in events if e.get("type") == "span_end")
                print(f"{path}: OK ({len(events)} events, {spans} closed spans)")
        print(render_table(summarize(events)))
    return status


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        raise SystemExit(0)
