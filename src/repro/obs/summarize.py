"""Summarise / validate ``repro.obs`` JSONL trace files.

Usage::

    python -m repro.obs.summarize trace.jsonl            # latency table
    python -m repro.obs.summarize trace.jsonl --validate # schema check
    python -m repro.obs.summarize trace-dir/             # rotated segments
    python -m repro.obs.summarize 'trace.jsonl*' --format json

Each positional argument may be a file, a directory (every
``*.jsonl*`` segment inside it), or a glob pattern; rotated segments of
one logical trace are merged in header-timestamp order before
summarising, so a trace that rolled over mid-run reads as one stream.

The latency table aggregates closed spans per span name (count, total,
mean, p50, p99, max — percentiles from the same log-scale histogram the
live registry uses, so offline and online numbers agree).  ``--format
json`` emits the same table machine-readably.  ``--validate`` enforces
the schema contract the obs-smoke CI job gates on: a versioned header
first in every physical file, every span closed exactly once, per-thread
monotonic timestamps, and end timestamps never before their start.
Flight-recorder post-mortems reuse the trace schema with extra
``snapshot`` / ``crash`` events, which validate like any other event.
"""

from __future__ import annotations

import argparse
import glob as glob_module
import json
import os
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import Histogram
from repro.obs.trace import TRACE_SCHEMA, TRACE_SCHEMA_VERSION

__all__ = [
    "expand_paths",
    "load_events",
    "load_merged",
    "main",
    "render_json",
    "render_table",
    "summarize",
    "validate_trace",
]

#: Event types that are not span bookkeeping (flight-recorder extras).
AUX_EVENT_TYPES = ("snapshot", "crash")


@dataclass
class SpanStats:
    name: str
    count: int = 0
    total: float = 0.0
    max: float = 0.0
    hist: Histogram = field(default_factory=Histogram)

    def add(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        if duration > self.max:
            self.max = duration
        self.hist.observe(duration)


def expand_paths(paths: Sequence[str]) -> List[str]:
    """Resolve files / directories / glob patterns into trace files.

    Directories contribute every ``*.jsonl*`` inside them (the base file
    plus its rotated ``.N`` segments); glob patterns expand in sorted
    order.  A literal path that matches nothing is kept so the caller
    reports a proper file-not-found error.
    """
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            entries = sorted(
                os.path.join(path, name)
                for name in os.listdir(path)
                if ".jsonl" in name
            )
            if not entries:
                out.append(path)  # surfaces "empty directory" downstream
            out.extend(entries)
        elif glob_module.has_magic(path):
            out.extend(sorted(glob_module.glob(path)) or [path])
        else:
            out.append(path)
    return out


def load_events(path: str) -> List[dict]:
    if os.path.isdir(path):
        raise ValueError(f"{path}: directory contains no .jsonl segments")
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON ({exc})") from exc
    return events


def _header_time(events: List[dict]) -> float:
    if events and events[0].get("type") == "header":
        try:
            return float(events[0].get("unix_time", 0.0))
        except (TypeError, ValueError):
            return 0.0
    return 0.0


def load_merged(paths: Sequence[str]) -> Tuple[List[dict], List[str]]:
    """Load several physical segments as one logical trace.

    Segments are ordered by their header ``unix_time`` (a rotated
    ``trace.jsonl.1`` predates the fresh ``trace.jsonl``), the first
    header is kept, and subsequent headers are dropped — span-pairing
    validation then runs over the merged stream, so spans that closed
    after a rotation still pair up.  Returns ``(events, errors)`` where
    ``errors`` carries per-file header violations.
    """
    loaded: List[Tuple[float, str, List[dict]]] = []
    errors: List[str] = []
    for path in paths:
        events = load_events(path)
        errors.extend(
            f"{path}: {err}" for err in _validate_header(events)
        )
        loaded.append((_header_time(events), path, events))
    loaded.sort(key=lambda item: (item[0], item[1]))
    merged: List[dict] = []
    for index, (_, _, events) in enumerate(loaded):
        body = events[1:] if events and events[0].get("type") == "header" else events
        if index == 0 and events and events[0].get("type") == "header":
            merged.append(events[0])
        merged.extend(body)
    return merged, errors


def _validate_header(events: List[dict]) -> List[str]:
    """Header-contract violations for one physical file."""
    if not events:
        return ["trace is empty (missing header)"]
    header = events[0]
    if header.get("type") != "header":
        return ["first event is not a header"]
    errors = []
    if header.get("schema") != TRACE_SCHEMA:
        errors.append(f"unknown schema {header.get('schema')!r}")
    if header.get("version") != TRACE_SCHEMA_VERSION:
        errors.append(f"unsupported schema version {header.get('version')!r}")
    return errors


def validate_trace(events: Iterable[dict]) -> List[str]:
    """Return a list of schema violations (empty when the trace is valid)."""
    events = list(events)
    errors: List[str] = _validate_header(events)
    open_spans: Dict[int, dict] = {}
    closed: set = set()
    last_ts: Dict[object, float] = {}
    for idx, event in enumerate(events[1:], start=2):
        etype = event.get("type")
        if etype == "header":
            errors.append(f"event {idx}: duplicate header")
            continue
        if etype not in ("span_start", "span_end") + AUX_EVENT_TYPES:
            errors.append(f"event {idx}: unknown event type {etype!r}")
            continue
        ts = event.get("ts")
        thread = event.get("thread")
        if not isinstance(ts, (int, float)):
            errors.append(f"event {idx}: missing/invalid ts")
            continue
        if thread in last_ts and ts < last_ts[thread]:
            errors.append(
                f"event {idx}: non-monotonic ts on thread {thread} "
                f"({ts} < {last_ts[thread]})"
            )
        last_ts[thread] = ts
        if etype in AUX_EVENT_TYPES:
            continue
        span_id = event.get("span")
        if not isinstance(span_id, int):
            errors.append(f"event {idx}: missing/invalid span id")
            continue
        if etype == "span_start":
            if span_id in open_spans or span_id in closed:
                errors.append(f"event {idx}: duplicate span id {span_id}")
                continue
            parent = event.get("parent")
            if parent is not None and parent not in open_spans:
                errors.append(
                    f"event {idx}: span {span_id} parent {parent} is not open"
                )
            open_spans[span_id] = event
        else:
            start = open_spans.pop(span_id, None)
            if start is None:
                errors.append(f"event {idx}: span_end for unopened span {span_id}")
                continue
            closed.add(span_id)
            if ts < start["ts"]:
                errors.append(
                    f"event {idx}: span {span_id} ends before it starts "
                    f"({ts} < {start['ts']})"
                )
            if event.get("name") != start.get("name"):
                errors.append(
                    f"event {idx}: span {span_id} name mismatch "
                    f"({event.get('name')!r} != {start.get('name')!r})"
                )
    for span_id, start in open_spans.items():
        errors.append(f"span {span_id} ({start.get('name')!r}) never closed")
    return errors


def summarize(events: Iterable[dict]) -> Dict[str, SpanStats]:
    stats: Dict[str, SpanStats] = {}
    for event in events:
        if event.get("type") != "span_end":
            continue
        name = str(event.get("name"))
        duration = float(event.get("dur", 0.0))
        entry = stats.get(name)
        if entry is None:
            entry = stats[name] = SpanStats(name)
        entry.add(duration)
    return stats


def render_table(stats: Dict[str, SpanStats]) -> str:
    header = (
        f"{'span':<28} {'count':>8} {'total_s':>10} {'mean_ms':>10} "
        f"{'p50_ms':>10} {'p99_ms':>10} {'max_ms':>10}"
    )
    lines = [header, "-" * len(header)]
    for name in sorted(stats, key=lambda n: -stats[n].total):
        s = stats[name]
        p50, p99 = s.hist.percentiles([50.0, 99.0])
        mean = s.total / s.count if s.count else 0.0
        lines.append(
            f"{name:<28} {s.count:>8} {s.total:>10.4f} {mean * 1e3:>10.3f} "
            f"{p50 * 1e3:>10.3f} {p99 * 1e3:>10.3f} {s.max * 1e3:>10.3f}"
        )
    if not stats:
        lines.append("(no closed spans)")
    return "\n".join(lines)


def render_json(
    stats: Dict[str, SpanStats],
    events: Optional[Iterable[dict]] = None,
    errors: Optional[List[str]] = None,
    files: Optional[List[str]] = None,
) -> str:
    """Machine-readable latency table (CI diffing / flight post-mortems)."""
    spans = []
    for name in sorted(stats, key=lambda n: (-stats[n].total, n)):
        s = stats[name]
        p50, p99 = s.hist.percentiles([50.0, 99.0])
        spans.append(
            {
                "span": name,
                "count": s.count,
                "total_s": s.total,
                "mean_ms": (s.total / s.count * 1e3) if s.count else 0.0,
                "p50_ms": p50 * 1e3,
                "p99_ms": p99 * 1e3,
                "max_ms": s.max * 1e3,
            }
        )
    doc: Dict[str, object] = {
        "schema": "repro.obs.summary",
        "version": 1,
        "spans": spans,
    }
    if files is not None:
        doc["files"] = list(files)
    if events is not None:
        event_list = list(events)
        doc["events"] = len(event_list)
        crashes = [e for e in event_list if e.get("type") == "crash"]
        if crashes:
            doc["crashes"] = crashes
    if errors is not None:
        doc["valid"] = not errors
        doc["violations"] = errors
    return json.dumps(doc, indent=2, default=str)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.summarize",
        description=(
            "Summarise or validate repro.obs JSONL traces. Arguments may "
            "be files, directories of rotated segments, or glob patterns; "
            "segments are merged in header-timestamp order."
        ),
    )
    parser.add_argument(
        "paths", nargs="+", help="trace file(s) / director(ies) / glob(s)"
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="validate the trace schema instead of only printing the table",
    )
    parser.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format for the latency summary (default: table)",
    )
    args = parser.parse_args(argv)

    files = expand_paths(args.paths)
    try:
        events, header_errors = load_merged(files)
    except (OSError, ValueError) as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        return 1

    errors: Optional[List[str]] = None
    status = 0
    if args.validate:
        # Per-file header errors are already collected (with a path
        # prefix); drop the merged stream's duplicate header findings.
        errors = header_errors + [
            err
            for err in validate_trace(events)
            if not any(known.endswith(err) for known in header_errors)
        ]
        if errors:
            status = 1
            if args.format == "table":
                print(f"INVALID ({len(errors)} violation(s))")
                for err in errors:
                    print(f"  - {err}")
        elif args.format == "table":
            spans = sum(1 for e in events if e.get("type") == "span_end")
            print(
                f"OK ({len(files)} file(s), {len(events)} events, "
                f"{spans} closed spans)"
            )
    stats = summarize(events)
    if args.format == "json":
        print(render_json(stats, events=events, errors=errors, files=files))
    else:
        print(render_table(stats))
    return status


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        raise SystemExit(0)
