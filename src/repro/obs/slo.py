"""Declarative SLO rules evaluated periodically over the live registry.

An :class:`SloEngine` owns a list of rules — span-latency percentiles,
gauge bounds, counter increases — and folds each evaluation into a
three-state health verdict with burn-rate semantics:

- ``ok``: the rule passed its most recent evaluation.
- ``degraded``: the most recent evaluation breached, but the breach is
  not yet sustained.
- ``failing``: at least ``ceil(failing_fraction * burn_window)`` of the
  last ``burn_window`` evaluations breached — the error budget is
  burning, not blipping.

The overall verdict is the worst per-rule status.  Every breaching
evaluation increments ``obs.slo.breaches{rule=...}`` and the verdict is
mirrored into the ``obs.slo.health`` gauge (0 ok / 1 degraded /
2 failing), so the health signal is itself scrapeable.  On a transition
out of ``ok`` the engine notifies ``on_breach`` (by default: dump the
flight recorder), and :meth:`SloEngine.promotion_gate` adapts the
verdict into the hook ``AdaptiveService`` consults before cutover.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import SPAN_SECONDS_METRIC

__all__ = [
    "CounterIncreaseRule",
    "GaugeRule",
    "HealthVerdict",
    "LatencyRule",
    "RuleResult",
    "RuleStatus",
    "SloEngine",
    "SloRule",
    "default_serving_rules",
]

BREACHES_METRIC = "obs.slo.breaches"
HEALTH_GAUGE = "obs.slo.health"
HEALTH_LEVELS = {"ok": 0, "degraded": 1, "failing": 2}


@dataclass
class RuleResult:
    """One rule's raw outcome for one evaluation."""

    rule: str
    ok: bool
    value: Optional[float]
    threshold: Optional[float]
    detail: str = ""


@dataclass
class RuleStatus:
    """A rule outcome folded against its burn-rate window."""

    rule: str
    status: str
    ok: bool
    value: Optional[float]
    threshold: Optional[float]
    detail: str
    breaches_in_window: int
    window: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "status": self.status,
            "ok": self.ok,
            "value": self.value,
            "threshold": self.threshold,
            "detail": self.detail,
            "breaches_in_window": self.breaches_in_window,
            "window": self.window,
        }


@dataclass
class HealthVerdict:
    """Overall health: worst rule status plus the per-rule breakdown."""

    status: str
    rules: List[RuleStatus] = field(default_factory=list)
    evaluations: int = 0
    evaluated_at: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "status": self.status,
            "evaluations": self.evaluations,
            "evaluated_at": self.evaluated_at,
            "rules": [r.as_dict() for r in self.rules],
        }


class SloRule:
    """Base class: subclasses implement ``evaluate(registry)``."""

    name: str = "rule"

    def evaluate(self, registry: MetricsRegistry) -> RuleResult:
        raise NotImplementedError


class LatencyRule(SloRule):
    """Span-latency percentile bound, pooled across every label set.

    Reads the ``obs.span.seconds{span=...}`` family — including series
    that cross-process pooling tagged with a ``proc`` label — merges them
    (exact, same bounds), and checks the requested percentile.  A span
    with no observations yet passes: absence of traffic is not a breach.
    """

    def __init__(
        self,
        span: str,
        percentile: float = 99.0,
        max_seconds: float = 0.25,
        name: Optional[str] = None,
    ) -> None:
        if not 0.0 <= percentile <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if max_seconds <= 0.0:
            raise ValueError("max_seconds must be positive")
        self.span = span
        self.percentile = percentile
        self.max_seconds = max_seconds
        self.name = name or f"{span}.p{percentile:g}"

    def evaluate(self, registry: MetricsRegistry) -> RuleResult:
        series = registry.instruments(
            "histogram", SPAN_SECONDS_METRIC, span=self.span
        )
        pooled: Optional[Histogram] = None
        for hist in series:
            if pooled is None:
                pooled = hist.copy()
            else:
                pooled.merge(hist)
        if pooled is None or pooled.count == 0:
            return RuleResult(
                self.name, True, None, self.max_seconds, "no observations"
            )
        value = pooled.percentile(self.percentile)
        ok = value <= self.max_seconds
        return RuleResult(
            self.name,
            ok,
            value,
            self.max_seconds,
            f"p{self.percentile:g}({self.span}) over {pooled.count} obs",
        )


class GaugeRule(SloRule):
    """Bound every matching gauge to ``[min_value, max_value]``.

    With multiple matching series (e.g. one per ``proc``) the worst
    offender decides.  No matching gauge → pass.
    """

    def __init__(
        self,
        metric: str,
        max_value: Optional[float] = None,
        min_value: Optional[float] = None,
        labels: Optional[Dict[str, object]] = None,
        name: Optional[str] = None,
    ) -> None:
        if max_value is None and min_value is None:
            raise ValueError("GaugeRule needs max_value and/or min_value")
        self.metric = metric
        self.max_value = max_value
        self.min_value = min_value
        self.labels = dict(labels or {})
        self.name = name or metric

    def evaluate(self, registry: MetricsRegistry) -> RuleResult:
        gauges = registry.instruments("gauge", self.metric, **self.labels)
        threshold = self.max_value if self.max_value is not None else self.min_value
        if not gauges:
            return RuleResult(self.name, True, None, threshold, "no gauge yet")
        worst: Optional[float] = None
        ok = True
        for g in gauges:
            value = g.value
            above = self.max_value is not None and value > self.max_value
            below = self.min_value is not None and value < self.min_value
            if above or below:
                ok = False
            if worst is None or (
                self.max_value is not None and value > worst
            ) or (
                self.max_value is None and value < worst
            ):
                worst = value
        return RuleResult(
            self.name, ok, worst, threshold, f"{len(gauges)} series"
        )


class CounterIncreaseRule(SloRule):
    """Breach when matching counters grew by more than ``max_increase``
    since the previous evaluation (e.g. any refit failure at all)."""

    def __init__(
        self,
        metric: str,
        max_increase: float = 0.0,
        labels: Optional[Dict[str, object]] = None,
        name: Optional[str] = None,
    ) -> None:
        if max_increase < 0.0:
            raise ValueError("max_increase must be >= 0")
        self.metric = metric
        self.max_increase = max_increase
        self.labels = dict(labels or {})
        self.name = name or f"{metric}.increase"
        self._last_total: Optional[float] = None

    def evaluate(self, registry: MetricsRegistry) -> RuleResult:
        counters = registry.instruments("counter", self.metric, **self.labels)
        total = float(sum(c.value for c in counters))
        previous = self._last_total
        self._last_total = total
        if previous is None:
            # First look establishes the baseline: pre-existing failures
            # predate this engine and should not page it.
            return RuleResult(
                self.name, True, 0.0, self.max_increase, "baseline"
            )
        increase = total - previous
        ok = increase <= self.max_increase
        return RuleResult(
            self.name,
            ok,
            increase,
            self.max_increase,
            f"total={total:g}",
        )


def default_serving_rules(
    score_p99_ms: float = 250.0,
    ingest_p99_ms: float = 500.0,
    backlog_max: float = 10_000.0,
    drift_total_max: float = 0.75,
) -> List[SloRule]:
    """The stock rule set for a live ``PredictionService``."""
    return [
        LatencyRule("serving.score", 99.0, score_p99_ms / 1e3),
        LatencyRule("serving.ingest", 99.0, ingest_p99_ms / 1e3),
        GaugeRule(
            "serving.ingest.backlog",
            max_value=backlog_max,
            name="serving.ingest.backlog",
        ),
        GaugeRule(
            "adapt.drift",
            max_value=drift_total_max,
            labels={"facet": "total"},
            name="adapt.drift.total",
        ),
        CounterIncreaseRule(
            "adapt.refits",
            max_increase=0.0,
            labels={"outcome": "error"},
            name="adapt.refit.failures",
        ),
    ]


class SloEngine:
    """Periodic rule evaluation → burn-rate verdict → `/healthz` + gates."""

    def __init__(
        self,
        rules: Sequence[SloRule],
        registry: Optional[MetricsRegistry] = None,
        interval: float = 5.0,
        burn_window: int = 6,
        failing_fraction: float = 0.5,
        on_breach: Optional[Callable[[HealthVerdict], None]] = None,
        flight: Optional[object] = None,
    ) -> None:
        if not rules:
            raise ValueError("SloEngine needs at least one rule")
        if interval <= 0.0:
            raise ValueError("interval must be positive")
        if burn_window < 1:
            raise ValueError("burn_window must be >= 1")
        if not 0.0 < failing_fraction <= 1.0:
            raise ValueError("failing_fraction must be in (0, 1]")
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names: {sorted(names)}")
        if registry is None:
            from repro import obs

            registry = obs.get_registry()
        self.rules = list(rules)
        self.registry = registry
        self.interval = interval
        self.burn_window = burn_window
        self.failing_count = max(1, math.ceil(failing_fraction * burn_window))
        self.on_breach = on_breach
        self.flight = flight
        self._history: Dict[str, deque] = {
            rule.name: deque(maxlen=burn_window) for rule in self.rules
        }
        self._lock = threading.Lock()
        self._verdict = HealthVerdict(status="ok")
        self._evaluations = 0
        self._ticker: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- evaluation --------------------------------------------------------

    def evaluate(self) -> HealthVerdict:
        """Run every rule once and fold the outcome into the verdict."""
        with self._lock:
            previous_status = self._verdict.status
            statuses: List[RuleStatus] = []
            for rule in self.rules:
                try:
                    result = rule.evaluate(self.registry)
                except Exception as exc:  # a broken rule is itself a breach
                    result = RuleResult(
                        rule.name, False, None, None, f"rule error: {exc!r}"
                    )
                history = self._history[rule.name]
                history.append(0 if result.ok else 1)
                breaches = sum(history)
                if result.ok:
                    status = "ok"
                elif breaches >= self.failing_count:
                    status = "failing"
                else:
                    status = "degraded"
                if not result.ok:
                    self.registry.counter(BREACHES_METRIC, rule=rule.name).inc()
                statuses.append(
                    RuleStatus(
                        rule=rule.name,
                        status=status,
                        ok=result.ok,
                        value=result.value,
                        threshold=result.threshold,
                        detail=result.detail,
                        breaches_in_window=breaches,
                        window=len(history),
                    )
                )
            overall = "ok"
            for status in statuses:
                if HEALTH_LEVELS[status.status] > HEALTH_LEVELS[overall]:
                    overall = status.status
            self._evaluations += 1
            verdict = HealthVerdict(
                status=overall,
                rules=statuses,
                evaluations=self._evaluations,
                evaluated_at=time.time(),
            )
            self._verdict = verdict
            self.registry.gauge(HEALTH_GAUGE).set(HEALTH_LEVELS[overall])
            flight = self.flight
            if flight is not None:
                flight.snapshot(self.registry)
        if overall != "ok" and previous_status == "ok":
            self._notify_breach(verdict)
        return verdict

    def _notify_breach(self, verdict: HealthVerdict) -> None:
        flight = self.flight
        if flight is not None:
            breached = ",".join(
                r.rule for r in verdict.rules if r.status != "ok"
            )
            try:
                flight.dump(reason=f"slo:{breached}")
            except Exception:
                pass
        if self.on_breach is not None:
            try:
                self.on_breach(verdict)
            except Exception:
                pass

    def verdict(self) -> HealthVerdict:
        """Most recent verdict (evaluating once if never evaluated)."""
        with self._lock:
            if self._evaluations:
                return self._verdict
        return self.evaluate()

    def healthy(self, allow_degraded: bool = True) -> bool:
        status = self.verdict().status
        if allow_degraded:
            return status != "failing"
        return status == "ok"

    def promotion_gate(
        self, allow_degraded: bool = True
    ) -> Callable[[], bool]:
        """A zero-arg hook for ``AdaptiveService(promotion_gate=...)``."""
        return lambda: self.healthy(allow_degraded=allow_degraded)

    # -- background ticker -------------------------------------------------

    def start(self) -> "SloEngine":
        """Evaluate every ``interval`` seconds on a daemon thread."""
        if self._ticker is not None and self._ticker.is_alive():
            return self
        self._stop.clear()
        self._ticker = threading.Thread(
            target=self._run, name="repro-obs-slo", daemon=True
        )
        self._ticker.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.evaluate()
            except Exception:
                pass

    def stop(self) -> None:
        self._stop.set()
        ticker = self._ticker
        if ticker is not None:
            ticker.join(timeout=2.0)
            self._ticker = None
