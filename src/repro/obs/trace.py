"""Structured tracing: spans, recorders, and the JSONL trace writer.

The hot-path contract: when observability is off, ``repro.obs.span(...)``
returns a shared null context manager and every metric helper returns
after one branch — no allocation, no lock, no clock read.  With
``mode="metrics"`` each span costs two ``perf_counter`` reads plus one
histogram observe; ``mode="trace"`` additionally appends two JSON events
(start/end) to a buffered, rotating, schema-versioned JSONL file.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import IO, Dict, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "Span",
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_VERSION",
    "TraceWriter",
]

#: Schema identifier stamped into every trace-file header.
TRACE_SCHEMA = "repro.obs.trace"
TRACE_SCHEMA_VERSION = 1

#: Histogram family every span duration feeds, labelled by span name.
SPAN_SECONDS_METRIC = "obs.span.seconds"


class _NullSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Recorder used when observability is off: every call is a no-op."""

    __slots__ = ()
    active = False

    def span(self, name: str, attrs: Optional[Dict[str, object]] = None) -> _NullSpan:
        return _NULL_SPAN

    def inc(self, name: str, amount: float = 1.0, **labels: object) -> None:
        return None

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        return None

    def observe(self, name: str, value: float, count: int = 1, **labels) -> None:
        return None

    def flush(self) -> None:
        return None


NULL_RECORDER = NullRecorder()


class TraceWriter:
    """Append-only, buffered, rotating JSONL event sink.

    Every physical file starts with a schema-versioned header line; when a
    file exceeds ``rotate_bytes`` it is closed and renamed to
    ``<path>.<n>`` (oldest has the highest suffix already taken), and a
    fresh file with a new header continues at ``path``.
    """

    def __init__(
        self,
        path: str,
        rotate_bytes: int = 64 * 1024 * 1024,
        flush_every: int = 256,
    ) -> None:
        if rotate_bytes < 4096:
            raise ValueError("rotate_bytes must be >= 4096")
        self.path = path
        self.rotate_bytes = rotate_bytes
        self.flush_every = max(1, flush_every)
        self._lock = threading.Lock()
        self._buffer: list[str] = []
        self._bytes_written = 0
        self._rotations = 0
        self._file: Optional[IO[str]] = None
        self._closed = False
        self._open_fresh()

    def _open_fresh(self) -> None:
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._file = open(self.path, "w", encoding="utf-8")
        header = {
            "type": "header",
            "schema": TRACE_SCHEMA,
            "version": TRACE_SCHEMA_VERSION,
            "pid": os.getpid(),
            "unix_time": time.time(),
        }
        line = json.dumps(header, separators=(",", ":")) + "\n"
        self._file.write(line)
        self._bytes_written = len(line.encode("utf-8"))

    def emit(self, event: Dict[str, object]) -> None:
        line = json.dumps(event, separators=(",", ":"), default=str)
        with self._lock:
            if self._closed:
                return
            self._buffer.append(line)
            if len(self._buffer) >= self.flush_every:
                self._drain_locked()

    def _drain_locked(self) -> None:
        if not self._buffer or self._file is None:
            return
        chunk = "\n".join(self._buffer) + "\n"
        self._buffer.clear()
        self._file.write(chunk)
        self._bytes_written += len(chunk.encode("utf-8"))
        if self._bytes_written >= self.rotate_bytes:
            self._rotate_locked()

    def _rotate_locked(self) -> None:
        assert self._file is not None
        self._file.close()
        self._rotations += 1
        os.replace(self.path, f"{self.path}.{self._rotations}")
        self._open_fresh()

    def flush(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._drain_locked()
            if self._file is not None:
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._drain_locked()
            if self._file is not None:
                self._file.flush()
                self._file.close()
                self._file = None
            self._closed = True

    @property
    def rotations(self) -> int:
        return self._rotations


class Span:
    """Timed context manager; optionally mirrored as trace events."""

    __slots__ = ("_recorder", "name", "attrs", "span_id", "parent_id", "_start")

    def __init__(
        self,
        recorder: "Recorder",
        name: str,
        attrs: Optional[Dict[str, object]],
    ) -> None:
        self._recorder = recorder
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self._start = 0.0

    def __enter__(self) -> "Span":
        recorder = self._recorder
        if recorder._writer is not None:
            self.span_id = next(recorder._span_ids)
            stack = recorder._stack()
            self.parent_id = stack[-1] if stack else None
            stack.append(self.span_id)
            self._start = time.perf_counter()
            event: Dict[str, object] = {
                "type": "span_start",
                "span": self.span_id,
                "name": self.name,
                "ts": self._start,
                "thread": threading.get_ident(),
            }
            if self.parent_id is not None:
                event["parent"] = self.parent_id
            if self.attrs:
                event["attrs"] = self.attrs
            recorder._writer.emit(event)
        else:
            self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end = time.perf_counter()
        recorder = self._recorder
        duration = end - self._start
        recorder.registry.histogram(SPAN_SECONDS_METRIC, span=self.name).observe(
            duration
        )
        flight = recorder._flight
        if flight is not None:
            flight.record_span(self.name, self._start, end, threading.get_ident())
        if recorder._writer is not None:
            stack = recorder._stack()
            if stack and stack[-1] == self.span_id:
                stack.pop()
            elif self.span_id in stack:
                stack.remove(self.span_id)
            recorder._writer.emit(
                {
                    "type": "span_end",
                    "span": self.span_id,
                    "name": self.name,
                    "ts": end,
                    "dur": duration,
                    "thread": threading.get_ident(),
                }
            )


class Recorder:
    """Live recorder: metrics registry plus optional trace writer."""

    active = True

    def __init__(
        self,
        registry: MetricsRegistry,
        writer: Optional[TraceWriter] = None,
    ) -> None:
        self.registry = registry
        self._writer = writer
        # Optional FlightRecorder mirroring every closed span into a
        # bounded ring; installed/detached by ``repro.obs`` configuration.
        self._flight = None
        self._span_ids = itertools.count(1)
        self._local = threading.local()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, attrs: Optional[Dict[str, object]] = None) -> Span:
        return Span(self, name, attrs)

    def inc(self, name: str, amount: float = 1.0, **labels: object) -> None:
        self.registry.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        self.registry.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, count: int = 1, **labels) -> None:
        self.registry.histogram(name, **labels).observe(value, count)

    def flush(self) -> None:
        if self._writer is not None:
            self._writer.flush()

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()

    @property
    def trace_path(self) -> Optional[str]:
        return self._writer.path if self._writer is not None else None


def current_spans(recorder: Recorder) -> Tuple[int, ...]:
    """Testing hook: the open span ids on the calling thread."""
    return tuple(recorder._stack())
