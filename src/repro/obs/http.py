"""Stdlib-only HTTP exposition for the live telemetry plane.

``TelemetryServer`` binds a ``ThreadingHTTPServer`` on a daemon thread
and serves three endpoints off the shared registry:

- ``/metrics`` — Prometheus text exposition (``render_prometheus()``).
- ``/healthz`` — the SLO engine's JSON verdict; HTTP 200 while ``ok`` or
  ``degraded``, 503 once ``failing`` (load balancers eject on status
  code, humans read the body).
- ``/statusz`` — human-readable snapshot: process info, health verdict,
  and a span-latency table pooled from ``obs.span.seconds``.

Port 0 binds an ephemeral port (tests, demos); ``server.port`` reports
the bound port either way.  No third-party dependencies: scraping a
model server must not change its dependency closure.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.slo import HealthVerdict, SloEngine
from repro.obs.trace import SPAN_SECONDS_METRIC

__all__ = ["TelemetryServer", "span_latency_table"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def span_latency_table(registry: MetricsRegistry) -> str:
    """Render per-span latency (count, mean, p50, p99) from the registry.

    Series that cross-process pooling split by ``proc`` are merged back
    together per span name — the table answers "how slow is ingest",
    not "how slow is ingest on shard 3".
    """
    pooled: Dict[str, Histogram] = {}
    for hist in registry.instruments("histogram", SPAN_SECONDS_METRIC):
        span = dict(hist.labels).get("span", "?")
        into = pooled.get(span)
        if into is None:
            pooled[span] = hist.copy()
        else:
            into.merge(hist)
    header = (
        f"{'span':<28} {'count':>9} {'mean_ms':>10} {'p50_ms':>10} {'p99_ms':>10}"
    )
    lines = [header, "-" * len(header)]
    for span in sorted(pooled, key=lambda s: -pooled[s].sum):
        hist = pooled[span]
        if hist.count == 0:
            continue
        p50, p99 = hist.percentiles([50.0, 99.0])
        mean = hist.sum / hist.count
        lines.append(
            f"{span:<28} {hist.count:>9} {mean * 1e3:>10.3f} "
            f"{p50 * 1e3:>10.3f} {p99 * 1e3:>10.3f}"
        )
    if len(lines) == 2:
        lines.append("(no spans recorded)")
    return "\n".join(lines)


class TelemetryServer:
    """Threaded HTTP server exposing the registry + health verdict."""

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: Optional[MetricsRegistry] = None,
        health: Optional[
            Callable[[], Optional[HealthVerdict]] | SloEngine
        ] = None,
        statusz_extra: Optional[Callable[[], Dict[str, object]]] = None,
    ) -> None:
        if not 0 <= port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {port}")
        if registry is None:
            from repro import obs

            registry = obs.get_registry()
        self.host = host
        self.registry = registry
        self.statusz_extra = statusz_extra
        self._requested_port = port
        self._health = health
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_at = 0.0

    # -- health plumbing ---------------------------------------------------

    def _verdict(self) -> Optional[HealthVerdict]:
        health = self._health
        if health is None:
            return None
        if isinstance(health, SloEngine):
            return health.verdict()
        return health()

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def port(self) -> int:
        if self._server is not None:
            return self._server.server_address[1]
        return self._requested_port

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        if self._server is not None:
            return self
        handler = _make_handler(self)
        server = ThreadingHTTPServer((self.host, self._requested_port), handler)
        server.daemon_threads = True
        self._server = server
        self._started_at = time.time()
        self._thread = threading.Thread(
            target=server.serve_forever,
            name="repro-obs-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        server = self._server
        if server is None:
            return
        self._server = None
        server.shutdown()
        server.server_close()
        thread = self._thread
        self._thread = None
        if thread is not None:
            thread.join(timeout=2.0)

    # -- endpoint bodies ---------------------------------------------------

    def metrics_body(self) -> str:
        return self.registry.render_prometheus()

    def healthz_body(self) -> tuple:
        verdict = self._verdict()
        if verdict is None:
            # No SLO engine attached: alive is all we can attest to.
            return 200, {"status": "ok", "rules": [], "evaluations": 0}
        body = verdict.as_dict()
        code = 503 if verdict.status == "failing" else 200
        return code, body

    def statusz_body(self) -> str:
        lines = [
            "repro.obs telemetry plane",
            f"pid: {os.getpid()}",
            f"uptime_s: {time.time() - self._started_at:.1f}",
        ]
        try:
            from repro import obs

            lines.append(f"obs_mode: {obs.current_mode()}")
        except Exception:
            pass
        verdict = self._verdict()
        if verdict is not None:
            lines.append(f"health: {verdict.status}")
            for rule in verdict.rules:
                lines.append(
                    f"  {rule.rule:<28} {rule.status:<9} "
                    f"value={rule.value} threshold={rule.threshold} "
                    f"breaches={rule.breaches_in_window}/{rule.window}"
                )
        extra = self.statusz_extra
        if extra is not None:
            try:
                for key, value in sorted(extra().items()):
                    lines.append(f"{key}: {value}")
            except Exception as exc:
                lines.append(f"statusz_extra error: {exc!r}")
        lines.append("")
        lines.append(span_latency_table(self.registry))
        lines.append("")
        return "\n".join(lines)


def _make_handler(server: TelemetryServer):
    class _Handler(BaseHTTPRequestHandler):
        # Telemetry is high-frequency and scrape logs are pure noise.
        def log_message(self, fmt: str, *args: object) -> None:
            return None

        def _send(self, code: int, content_type: str, body: str) -> None:
            payload = body.encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            path = self.path.split("?", 1)[0]
            try:
                if path == "/metrics":
                    self._send(
                        200, PROMETHEUS_CONTENT_TYPE, server.metrics_body()
                    )
                elif path == "/healthz":
                    code, body = server.healthz_body()
                    self._send(
                        code,
                        "application/json",
                        json.dumps(body, indent=2, default=str) + "\n",
                    )
                elif path == "/statusz":
                    self._send(
                        200,
                        "text/plain; charset=utf-8",
                        server.statusz_body(),
                    )
                else:
                    self._send(
                        404,
                        "text/plain; charset=utf-8",
                        "not found; try /metrics /healthz /statusz\n",
                    )
            except BrokenPipeError:
                pass
            except Exception as exc:
                try:
                    self._send(
                        500, "text/plain; charset=utf-8", f"error: {exc!r}\n"
                    )
                except Exception:
                    pass

    return _Handler
