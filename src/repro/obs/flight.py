"""Crash flight recorder: bounded rings of recent spans + registry snapshots.

A :class:`FlightRecorder` rides along with the live recorder at a fixed
memory budget: every closed span appends one tuple to a ring, and the SLO
engine (or any caller) can park periodic registry snapshots next to it.
On an unhandled exception — or an SLO breach, or an explicit
``obs.record_crash`` — the rings are dumped as a schema-versioned JSONL
post-mortem that ``python -m repro.obs.summarize --validate`` accepts:
the same ``repro.obs.trace`` header, ``span_start``/``span_end`` pairs
reconstructed from the ring (parent links are omitted because the ring
may have evicted them), plus ``snapshot`` and ``crash`` events.

Dumps are written to a temp file and ``os.replace``d into place, so a
process that dies mid-dump (even via ``os._exit``) never leaves a torn
post-mortem behind.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
import traceback as traceback_module
from collections import deque
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TRACE_SCHEMA, TRACE_SCHEMA_VERSION

__all__ = ["FlightRecorder"]

#: Flight-dump annotation carried inside the trace header.
FLIGHT_SCHEMA = "repro.obs.flight"
FLIGHT_SCHEMA_VERSION = 1

DEFAULT_MAX_SPANS = 2048
DEFAULT_MAX_SNAPSHOTS = 8


class FlightRecorder:
    """Bounded in-memory ring buffer dumped as a JSONL post-mortem.

    ``path`` may be a directory (dumps get unique names inside it), a file
    path (subsequent dumps append ``.<n>``), or ``None`` (dumps land in
    the working directory).  ``record_span`` is the hot-path entry — one
    bounded ``deque.append`` of a tuple, no lock, no allocation beyond
    the tuple itself.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        max_spans: int = DEFAULT_MAX_SPANS,
        max_snapshots: int = DEFAULT_MAX_SNAPSHOTS,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        if max_snapshots < 1:
            raise ValueError("max_snapshots must be >= 1")
        self.path = path
        self.registry = registry
        self._spans: deque = deque(maxlen=max_spans)
        self._snapshots: deque = deque(maxlen=max_snapshots)
        self._crashes: deque = deque(maxlen=16)
        self._dump_lock = threading.Lock()
        self._dump_count = 0
        self._dumps: List[str] = []
        self._undumped_crash = False
        self._hooks_installed = False
        self._prev_sys_hook = None
        self._prev_threading_hook = None

    # -- recording (hot path) --------------------------------------------

    def record_span(
        self, name: str, start: float, end: float, thread: int
    ) -> None:
        """Append one closed span to the ring (called from ``Span.__exit__``)."""
        self._spans.append((name, start, end, thread))

    def snapshot(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Park one registry snapshot in the ring (SLO ticker cadence)."""
        reg = registry if registry is not None else self.registry
        if reg is None:
            return
        self._snapshots.append(
            (time.perf_counter(), time.time(), reg.snapshot())
        )

    def record_crash(
        self,
        where: str,
        error: Optional[BaseException] = None,
        dump: bool = True,
        reason: Optional[str] = None,
    ) -> Optional[str]:
        """Record a crash event; by default dump the post-mortem immediately."""
        tb = None
        if error is not None:
            tb = "".join(
                traceback_module.format_exception(
                    type(error), error, error.__traceback__
                )
            )
        self._crashes.append(
            (
                time.perf_counter(),
                threading.get_ident(),
                where,
                repr(error) if error is not None else None,
                tb,
            )
        )
        self._undumped_crash = True
        if dump:
            return self.dump(reason=reason or f"crash:{where}")
        return None

    # -- dumping ----------------------------------------------------------

    @property
    def dumps(self) -> List[str]:
        """Paths of every post-mortem written so far."""
        return list(self._dumps)

    def _resolve_path(self, explicit: Optional[str]) -> str:
        if explicit is not None:
            return explicit
        default_name = f"repro-obs-flight-{os.getpid()}-{self._dump_count}.jsonl"
        target = self.path
        if target is None:
            return default_name
        if os.path.isdir(target) or target.endswith(os.sep):
            return os.path.join(target, default_name)
        if self._dump_count:
            return f"{target}.{self._dump_count}"
        return target

    def dump(
        self,
        path: Optional[str] = None,
        reason: str = "manual",
    ) -> str:
        """Write the rings as a validating JSONL trace; return the path."""
        with self._dump_lock:
            spans = list(self._spans)
            crashes = list(self._crashes)
            # A dump is the moment of truth: grab one final registry
            # snapshot so the post-mortem carries the terminal state.
            self.snapshot()
            snapshots = list(self._snapshots)
            target = self._resolve_path(path)
            events: List[Dict[str, object]] = []
            for span_id, (name, start, end, thread) in enumerate(spans, start=1):
                events.append(
                    {
                        "type": "span_start",
                        "span": span_id,
                        "name": name,
                        "ts": start,
                        "thread": thread,
                    }
                )
                events.append(
                    {
                        "type": "span_end",
                        "span": span_id,
                        "name": name,
                        "ts": end,
                        "dur": end - start,
                        "thread": thread,
                    }
                )
            for ts, unix_time, metrics in snapshots:
                events.append(
                    {
                        "type": "snapshot",
                        "ts": ts,
                        "unix_time": unix_time,
                        "metrics": metrics,
                    }
                )
            for ts, thread, where, error, tb in crashes:
                event: Dict[str, object] = {
                    "type": "crash",
                    "ts": ts,
                    "thread": thread,
                    "where": where,
                }
                if error is not None:
                    event["error"] = error
                if tb is not None:
                    event["traceback"] = tb
                events.append(event)
            # Global ts order implies per-thread monotonicity; at equal ts
            # a span's start must precede its end for the validator.
            events.sort(
                key=lambda e: (e["ts"], 1 if e["type"] == "span_end" else 0)
            )
            header = {
                "type": "header",
                "schema": TRACE_SCHEMA,
                "version": TRACE_SCHEMA_VERSION,
                "pid": os.getpid(),
                "unix_time": time.time(),
                "flight": {
                    "schema": FLIGHT_SCHEMA,
                    "version": FLIGHT_SCHEMA_VERSION,
                    "reason": reason,
                    "spans": len(spans),
                    "snapshots": len(snapshots),
                    "crashes": len(crashes),
                },
            }
            parent = os.path.dirname(os.path.abspath(target))
            os.makedirs(parent, exist_ok=True)
            tmp = f"{target}.tmp.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(header, separators=(",", ":")) + "\n")
                for event in events:
                    fh.write(
                        json.dumps(event, separators=(",", ":"), default=str)
                        + "\n"
                    )
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
            self._dump_count += 1
            self._dumps.append(target)
            self._undumped_crash = False
            return target

    def finalize(self) -> Optional[str]:
        """Shutdown hook: flush any crash that was recorded but never dumped.

        Called by ``obs._shutdown`` *before* the trace writer and periodic
        flusher are torn down, so a crashing process never loses its final
        snapshot.
        """
        if self._undumped_crash:
            return self.dump(reason="shutdown")
        return None

    # -- unhandled-exception capture --------------------------------------

    def install_excepthooks(self) -> None:
        """Chain into ``sys.excepthook`` / ``threading.excepthook``."""
        if self._hooks_installed:
            return
        self._hooks_installed = True
        self._prev_sys_hook = sys.excepthook
        self._prev_threading_hook = threading.excepthook

        def _sys_hook(exc_type, exc, tb):  # pragma: no cover - exercised
            # via subprocess tests; coverage does not cross excepthook.
            if not issubclass(exc_type, (SystemExit, KeyboardInterrupt)):
                try:
                    self.record_crash("main", exc, reason="crash:unhandled")
                except Exception:
                    pass
            prev = self._prev_sys_hook or sys.__excepthook__
            prev(exc_type, exc, tb)

        def _threading_hook(args):  # pragma: no cover - subprocess tests
            if args.exc_type is not SystemExit:
                try:
                    self.record_crash(
                        f"thread:{getattr(args.thread, 'name', '?')}",
                        args.exc_value,
                        reason="crash:thread",
                    )
                except Exception:
                    pass
            prev = self._prev_threading_hook or threading.__excepthook__
            prev(args)

        sys.excepthook = _sys_hook
        threading.excepthook = _threading_hook
        self._installed_sys_hook = _sys_hook
        self._installed_threading_hook = _threading_hook

    def uninstall_excepthooks(self) -> None:
        if not self._hooks_installed:
            return
        # Only restore if nobody chained on top of us in the meantime.
        if sys.excepthook is self._installed_sys_hook:
            sys.excepthook = self._prev_sys_hook or sys.__excepthook__
        if threading.excepthook is self._installed_threading_hook:
            threading.excepthook = self._prev_threading_hook or (
                threading.__excepthook__
            )
        self._hooks_installed = False
