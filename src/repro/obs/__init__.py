"""repro.obs — unified telemetry: tracing spans + metrics registry.

One process-global recorder feeds every runtime layer (replay, serving,
persistence, adaptation) so fleet routing, promotion gates, and debugging
all read the same vocabulary.  Three modes:

- ``off`` (default): the null recorder; hot loops pay one branch.
- ``metrics``: counters/gauges/histograms live, span durations feed the
  ``obs.span.seconds`` histogram family, nothing touches disk.
- ``trace``: metrics plus an append-only JSONL span log (rotating,
  schema-versioned) for ``python -m repro.obs.summarize``.

Configuration: ``configure(mode=..., trace_path=..., flush_interval=...)``
programmatically, ``ExecutionConfig(obs=...)`` per fit, or the
``REPRO_OBS`` env var (``off`` | ``metrics`` | ``trace[:path]``) at import.
"""

from __future__ import annotations

import atexit
import contextlib
import os
import threading
from typing import Dict, Iterator, Optional, Union

from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_bucket_bounds,
)
from repro.obs.trace import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    TraceWriter,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BOUNDS",
    "log_bucket_bounds",
    "configure",
    "current_mode",
    "enabled",
    "flush",
    "get_recorder",
    "get_registry",
    "inc",
    "observability",
    "observe",
    "render_prometheus",
    "reset_metrics",
    "set_gauge",
    "span",
]

MODES = ("off", "metrics", "trace")
DEFAULT_TRACE_PATH = "repro-obs-trace.jsonl"

_registry = MetricsRegistry()
_recorder: Union[NullRecorder, Recorder] = NULL_RECORDER
_mode = "off"
_config_lock = threading.RLock()
_flusher: Optional["_PeriodicFlusher"] = None


class _PeriodicFlusher:
    """Daemon thread flushing the trace writer every ``interval`` seconds."""

    def __init__(self, recorder: Recorder, interval: float) -> None:
        self._recorder = recorder
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-flush", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self._recorder.flush()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=1.0)


def configure(
    mode: str = "metrics",
    trace_path: Optional[str] = None,
    flush_interval: Optional[float] = None,
    rotate_bytes: int = 64 * 1024 * 1024,
) -> None:
    """Swap the process-global recorder.

    The metrics registry survives reconfiguration (counters keep their
    totals across mode flips); only the recorder — and with it the trace
    writer — is replaced.  An open trace writer from a previous ``trace``
    configuration is flushed and closed.
    """
    global _recorder, _mode, _flusher
    if mode not in MODES:
        raise ValueError(f"obs mode must be one of {MODES}, got {mode!r}")
    if flush_interval is not None and flush_interval <= 0:
        raise ValueError("flush_interval must be positive")
    with _config_lock:
        if _flusher is not None:
            _flusher.stop()
            _flusher = None
        if isinstance(_recorder, Recorder):
            _recorder.close()
        if mode == "off":
            _recorder = NULL_RECORDER
        elif mode == "metrics":
            _recorder = Recorder(_registry)
        else:
            writer = TraceWriter(
                trace_path or DEFAULT_TRACE_PATH, rotate_bytes=rotate_bytes
            )
            recorder = Recorder(_registry, writer)
            _recorder = recorder
            if flush_interval is not None:
                _flusher = _PeriodicFlusher(recorder, flush_interval)
        _mode = mode


def current_mode() -> str:
    return _mode


def enabled() -> bool:
    return _recorder.active


def get_recorder() -> Union[NullRecorder, Recorder]:
    return _recorder


def get_registry() -> MetricsRegistry:
    return _registry


def span(name: str, **attrs: object):
    """Timed span context manager: ``with obs.span("store.ingest", batch=n):``.

    Disabled path: one branch inside the null recorder, shared null
    context manager, no allocation.
    """
    return _recorder.span(name, attrs or None)


def inc(name: str, amount: float = 1.0, **labels: object) -> None:
    """Increment a counter (no-op when observability is off)."""
    _recorder.inc(name, amount, **labels)


def set_gauge(name: str, value: float, **labels: object) -> None:
    """Set a gauge (no-op when observability is off)."""
    _recorder.set_gauge(name, value, **labels)


def observe(name: str, value: float, count: int = 1, **labels: object) -> None:
    """Record into a histogram (no-op when observability is off)."""
    _recorder.observe(name, value, count, **labels)


def render_prometheus() -> str:
    """Prometheus text-format snapshot of the process metrics registry."""
    return _registry.render_prometheus()


def reset_metrics() -> None:
    """Clear every instrument (testing / demo reruns)."""
    _registry.reset()


def flush() -> None:
    """Flush buffered trace events to disk (no-op outside trace mode)."""
    _recorder.flush()


@contextlib.contextmanager
def observability(
    mode: str,
    trace_path: Optional[str] = None,
    flush_interval: Optional[float] = None,
    rotate_bytes: int = 64 * 1024 * 1024,
) -> Iterator[None]:
    """Temporarily reconfigure observability; restores ``off``/prior mode.

    Intended for tests and benchmarks: the previous *mode* is restored on
    exit, but a previous trace writer is not reopened (its file was closed
    when this configuration took over).
    """
    previous = _mode
    configure(
        mode,
        trace_path=trace_path,
        flush_interval=flush_interval,
        rotate_bytes=rotate_bytes,
    )
    try:
        yield
    finally:
        configure(previous if previous != "trace" else "metrics")


def _parse_env(value: str) -> Dict[str, object]:
    value = value.strip()
    if not value:
        return {"mode": "off"}
    mode, _, path = value.partition(":")
    mode = mode.strip().lower()
    if mode not in MODES:
        raise ValueError(
            f"REPRO_OBS must be off|metrics|trace[:path], got {value!r}"
        )
    out: Dict[str, object] = {"mode": mode}
    if path:
        if mode != "trace":
            raise ValueError("REPRO_OBS path suffix is only valid with trace mode")
        out["trace_path"] = path
    return out


def _configure_from_env() -> None:
    raw = os.environ.get("REPRO_OBS")
    if raw is None:
        return
    configure(**_parse_env(raw))  # type: ignore[arg-type]


def _shutdown() -> None:
    with _config_lock:
        if _flusher is not None:
            _flusher.stop()
        if isinstance(_recorder, Recorder):
            _recorder.close()


atexit.register(_shutdown)
_configure_from_env()
