"""repro.obs — unified telemetry: tracing spans + metrics registry.

One process-global recorder feeds every runtime layer (replay, serving,
persistence, adaptation) so fleet routing, promotion gates, and debugging
all read the same vocabulary.  Three modes:

- ``off`` (default): the null recorder; hot loops pay one branch.
- ``metrics``: counters/gauges/histograms live, span durations feed the
  ``obs.span.seconds`` histogram family, nothing touches disk.
- ``trace``: metrics plus an append-only JSONL span log (rotating,
  schema-versioned) for ``python -m repro.obs.summarize``.

Configuration: ``configure(mode=..., trace_path=..., flush_interval=...)``
programmatically, ``ExecutionConfig(obs=...)`` per fit, or the
``REPRO_OBS`` env var (``off`` | ``metrics`` | ``trace[:path]``) at import.

The live telemetry plane stacks on top of the same registry:

- ``start_http_server(port)`` / ``REPRO_OBS_HTTP=<port>`` /
  ``ExecutionConfig(obs_http_port=...)`` — ``/metrics``, ``/healthz``,
  ``/statusz`` over stdlib HTTP (``repro.obs.http``).
- ``enable_flight_recorder(path)`` / ``REPRO_OBS_FLIGHT=<1|path>`` — a
  bounded crash flight recorder (``repro.obs.flight``) dumping a
  validating JSONL post-mortem on unhandled exceptions or SLO breaches.
- ``repro.obs.slo`` — declarative SLO rules evaluated into the
  ok/degraded/failing verdict ``/healthz`` serves.
"""

from __future__ import annotations

import atexit
import contextlib
import os
import threading
from typing import Dict, Iterator, Optional, Union

from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_bucket_bounds,
)
from repro.obs.trace import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    TraceWriter,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BOUNDS",
    "log_bucket_bounds",
    "configure",
    "current_mode",
    "disable_flight_recorder",
    "enable_flight_recorder",
    "enabled",
    "flush",
    "get_flight_recorder",
    "get_http_server",
    "get_recorder",
    "get_registry",
    "inc",
    "observability",
    "observe",
    "record_crash",
    "render_prometheus",
    "reset_metrics",
    "set_gauge",
    "span",
    "start_http_server",
    "stop_http_server",
]

MODES = ("off", "metrics", "trace")
DEFAULT_TRACE_PATH = "repro-obs-trace.jsonl"

_registry = MetricsRegistry()
_recorder: Union[NullRecorder, Recorder] = NULL_RECORDER
_mode = "off"
_config_lock = threading.RLock()
_flusher: Optional["_PeriodicFlusher"] = None
_flight = None  # Optional[FlightRecorder]
_http_server = None  # Optional[TelemetryServer]
_health_engine = None  # Optional[SloEngine]
_owns_health_engine = False


class _PeriodicFlusher:
    """Daemon thread flushing the trace writer every ``interval`` seconds."""

    def __init__(self, recorder: Recorder, interval: float) -> None:
        self._recorder = recorder
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-flush", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self._recorder.flush()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=1.0)


def configure(
    mode: str = "metrics",
    trace_path: Optional[str] = None,
    flush_interval: Optional[float] = None,
    rotate_bytes: int = 64 * 1024 * 1024,
) -> None:
    """Swap the process-global recorder.

    The metrics registry survives reconfiguration (counters keep their
    totals across mode flips); only the recorder — and with it the trace
    writer — is replaced.  An open trace writer from a previous ``trace``
    configuration is flushed and closed.
    """
    global _recorder, _mode, _flusher
    if mode not in MODES:
        raise ValueError(f"obs mode must be one of {MODES}, got {mode!r}")
    if flush_interval is not None and flush_interval <= 0:
        raise ValueError("flush_interval must be positive")
    with _config_lock:
        if _flusher is not None:
            _flusher.stop()
            _flusher = None
        if isinstance(_recorder, Recorder):
            _recorder.close()
        if mode == "off":
            _recorder = NULL_RECORDER
        elif mode == "metrics":
            _recorder = Recorder(_registry)
        else:
            writer = TraceWriter(
                trace_path or DEFAULT_TRACE_PATH, rotate_bytes=rotate_bytes
            )
            recorder = Recorder(_registry, writer)
            _recorder = recorder
            if flush_interval is not None:
                _flusher = _PeriodicFlusher(recorder, flush_interval)
        # The flight recorder survives mode flips: re-attach it to the
        # fresh recorder so span rings keep filling.
        if _flight is not None and isinstance(_recorder, Recorder):
            _recorder._flight = _flight
        _mode = mode


def current_mode() -> str:
    return _mode


def enabled() -> bool:
    return _recorder.active


def get_recorder() -> Union[NullRecorder, Recorder]:
    return _recorder


def get_registry() -> MetricsRegistry:
    return _registry


def span(name: str, **attrs: object):
    """Timed span context manager: ``with obs.span("store.ingest", batch=n):``.

    Disabled path: one branch inside the null recorder, shared null
    context manager, no allocation.
    """
    return _recorder.span(name, attrs or None)


def inc(name: str, amount: float = 1.0, **labels: object) -> None:
    """Increment a counter (no-op when observability is off)."""
    _recorder.inc(name, amount, **labels)


def set_gauge(name: str, value: float, **labels: object) -> None:
    """Set a gauge (no-op when observability is off)."""
    _recorder.set_gauge(name, value, **labels)


def observe(name: str, value: float, count: int = 1, **labels: object) -> None:
    """Record into a histogram (no-op when observability is off)."""
    _recorder.observe(name, value, count, **labels)


def render_prometheus() -> str:
    """Prometheus text-format snapshot of the process metrics registry."""
    return _registry.render_prometheus()


def reset_metrics() -> None:
    """Clear every instrument (testing / demo reruns)."""
    _registry.reset()


def flush() -> None:
    """Flush buffered trace events to disk (no-op outside trace mode)."""
    _recorder.flush()


def _fork_reinit(mode: str) -> None:
    """Re-initialise observability inside a pool worker process.

    A forked child inherits the parent's registry counts, trace writer
    (sharing the parent's file descriptor!), flusher handle, and flight
    recorder.  None of those may be touched from the child: the registry
    is cleared so the worker reports *deltas*, and the inherited recorder
    is abandoned — never flushed or closed — so buffered parent events
    are not duplicated into the shared fd.  Workers only ever run in
    ``off`` or ``metrics`` mode; their metrics travel home as payloads.
    """
    global _recorder, _mode, _flusher, _flight, _http_server, _health_engine
    global _owns_health_engine
    _flusher = None
    _flight = None
    _http_server = None
    _health_engine = None
    _owns_health_engine = False
    _registry.reset()
    if mode == "off":
        _recorder = NULL_RECORDER
        _mode = "off"
    else:
        _recorder = Recorder(_registry)
        _mode = "metrics"


# -- flight recorder -------------------------------------------------------


def enable_flight_recorder(
    path: Optional[str] = None,
    max_spans: Optional[int] = None,
    max_snapshots: Optional[int] = None,
    install_hooks: bool = True,
):
    """Attach a crash flight recorder to the live recorder.

    Returns the (process-global) ``FlightRecorder``.  With
    ``install_hooks`` it chains into ``sys.excepthook`` and
    ``threading.excepthook`` so any unhandled exception dumps a
    post-mortem before the interpreter unwinds.  Spans are only ringed
    while observability is on (``metrics``/``trace``); crash events are
    captured regardless.
    """
    global _flight
    from repro.obs.flight import (
        DEFAULT_MAX_SNAPSHOTS,
        DEFAULT_MAX_SPANS,
        FlightRecorder,
    )

    with _config_lock:
        if _flight is None:
            _flight = FlightRecorder(
                path=path,
                max_spans=max_spans or DEFAULT_MAX_SPANS,
                max_snapshots=max_snapshots or DEFAULT_MAX_SNAPSHOTS,
                registry=_registry,
            )
        else:
            if path is not None:
                _flight.path = path
        if install_hooks:
            _flight.install_excepthooks()
        if isinstance(_recorder, Recorder):
            _recorder._flight = _flight
        return _flight


def disable_flight_recorder() -> None:
    """Detach and drop the flight recorder (testing / demo reruns)."""
    global _flight
    with _config_lock:
        if _flight is not None:
            _flight.uninstall_excepthooks()
            _flight = None
        if isinstance(_recorder, Recorder):
            _recorder._flight = None


def get_flight_recorder():
    """The process-global ``FlightRecorder``, or ``None``."""
    return _flight


def record_crash(
    where: str,
    error: Optional[BaseException] = None,
    dump: bool = True,
) -> Optional[str]:
    """Record a crash into the flight recorder (no-op when disabled).

    Worker threads that swallow exceptions to hand them across a queue
    (serving ingest producer, refit scheduler) call this explicitly,
    since ``threading.excepthook`` never sees a caught exception.
    """
    flight = _flight
    if flight is None:
        return None
    return flight.record_crash(where, error, dump=dump)


# -- HTTP exposition -------------------------------------------------------


def start_http_server(
    port: int = 0,
    host: str = "127.0.0.1",
    health=None,
    slo_interval: float = 5.0,
):
    """Start (or return) the process-global telemetry HTTP server.

    Without an explicit ``health`` source a default ``SloEngine`` over
    ``default_serving_rules()`` is created and ticked periodically, so
    ``/healthz`` is live even for code that never touches ``repro.obs.slo``.
    Idempotent while running; a different ``port`` restarts the server.
    """
    global _http_server, _health_engine, _owns_health_engine
    from repro.obs.http import TelemetryServer
    from repro.obs.slo import SloEngine, default_serving_rules

    with _config_lock:
        if _http_server is not None:
            if port in (0, _http_server.port):
                return _http_server
            stop_http_server()
        if health is None:
            if _health_engine is None:
                _health_engine = SloEngine(
                    default_serving_rules(),
                    registry=_registry,
                    interval=slo_interval,
                    flight=_flight,
                ).start()
                _owns_health_engine = True
            health = _health_engine
        elif isinstance(health, SloEngine):
            _health_engine = health
            _owns_health_engine = False
        server = TelemetryServer(
            port=port, host=host, registry=_registry, health=health
        )
        server.start()
        _http_server = server
        return server


def stop_http_server() -> None:
    """Stop the process-global telemetry server (and its own SLO ticker)."""
    global _http_server, _health_engine, _owns_health_engine
    with _config_lock:
        if _http_server is not None:
            _http_server.stop()
            _http_server = None
        if _health_engine is not None and _owns_health_engine:
            _health_engine.stop()
            _health_engine = None
            _owns_health_engine = False


def get_http_server():
    """The process-global ``TelemetryServer``, or ``None``."""
    return _http_server


@contextlib.contextmanager
def observability(
    mode: str,
    trace_path: Optional[str] = None,
    flush_interval: Optional[float] = None,
    rotate_bytes: int = 64 * 1024 * 1024,
) -> Iterator[None]:
    """Temporarily reconfigure observability; restores ``off``/prior mode.

    Intended for tests and benchmarks: the previous *mode* is restored on
    exit, but a previous trace writer is not reopened (its file was closed
    when this configuration took over).
    """
    previous = _mode
    configure(
        mode,
        trace_path=trace_path,
        flush_interval=flush_interval,
        rotate_bytes=rotate_bytes,
    )
    try:
        yield
    finally:
        configure(previous if previous != "trace" else "metrics")


def _parse_env(value: str) -> Dict[str, object]:
    value = value.strip()
    if not value:
        return {"mode": "off"}
    mode, _, path = value.partition(":")
    mode = mode.strip().lower()
    if mode not in MODES:
        raise ValueError(
            f"REPRO_OBS must be off|metrics|trace[:path], got {value!r}"
        )
    out: Dict[str, object] = {"mode": mode}
    if path:
        if mode != "trace":
            raise ValueError("REPRO_OBS path suffix is only valid with trace mode")
        out["trace_path"] = path
    return out


def _configure_from_env() -> None:
    raw = os.environ.get("REPRO_OBS")
    if raw is not None:
        configure(**_parse_env(raw))  # type: ignore[arg-type]
    flight_raw = os.environ.get("REPRO_OBS_FLIGHT")
    if flight_raw is not None:
        flight_raw = flight_raw.strip()
        if flight_raw and flight_raw not in ("0", "false", "off"):
            path = None if flight_raw in ("1", "true", "on") else flight_raw
            enable_flight_recorder(path=path)
    http_raw = os.environ.get("REPRO_OBS_HTTP")
    if http_raw is not None:
        try:
            port = int(http_raw)
        except ValueError:
            raise ValueError(
                f"REPRO_OBS_HTTP must be a port number, got {http_raw!r}"
            ) from None
        start_http_server(port)


def _shutdown() -> None:
    # Teardown order matters: the exposition plane and SLO ticker go
    # first (nothing should scrape or evaluate mid-teardown), then the
    # flight recorder flushes any pending post-mortem *while the trace
    # writer and flusher are still alive*, and only then do the flusher
    # and recorder die.  A crashing process keeps its final snapshot.
    with _config_lock:
        stop_http_server()
        if _flight is not None:
            try:
                _flight.finalize()
            except Exception:
                pass
        if _flusher is not None:
            _flusher.stop()
        if isinstance(_recorder, Recorder):
            _recorder.close()


atexit.register(_shutdown)
_configure_from_env()
