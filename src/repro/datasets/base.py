"""Dataset container binding a stream, its label queries, and the task."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.streams.ctdg import CTDG
from repro.streams.split import ChronoSplit, chronological_split
from repro.tasks.base import QuerySet, Task


@dataclass
class StreamDataset:
    """A CTDG with node-property labels — one row of the paper's Table II.

    ``queries``/``task.labels`` are aligned: the i-th query asks for node
    ``queries.nodes[i]`` at ``queries.times[i]`` with ground truth
    ``task.labels[i]``.
    """

    name: str
    ctdg: CTDG
    queries: QuerySet
    task: Task
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.queries) != self.task.num_queries:
            raise ValueError(
                f"{len(self.queries)} queries but {self.task.num_queries} labels"
            )

    @property
    def num_queries(self) -> int:
        return len(self.queries)

    def split(self, train_frac: float = 0.1, val_frac: float = 0.1) -> ChronoSplit:
        """Chronological query split (paper default: 10/10/80)."""
        return chronological_split(self.queries.times, train_frac, val_frac)

    def train_stream(self, split: ChronoSplit) -> CTDG:
        """Edges within the training period (up to the last training query)."""
        return self.ctdg.prefix_until(split.train_end_time, inclusive=True)

    def summary(self) -> Dict[str, object]:
        """Table-II style dataset statistics."""
        labels = self.task.labels
        if labels.ndim == 1:
            num_labels = int(len(np.unique(labels)))
        else:
            num_labels = int(labels.shape[1])
        return {
            "name": self.name,
            "task": self.task.name,
            "num_nodes": int(self.ctdg.num_nodes),
            "num_edges": int(self.ctdg.num_edges),
            "num_queries": int(self.num_queries),
            "edge_feature_dim": int(self.ctdg.edge_feature_dim),
            "has_edge_weights": bool(np.any(self.ctdg.weights != 1.0)),
            "num_labels": num_labels,
        }
