"""Synthetic stand-ins for the JODIE anomaly datasets (Wikipedia, Reddit,
MOOC).

Shape of the real data: a bipartite user-item interaction stream; each
interaction carries an edge feature; a user's *state* (normal/abnormal) is
queried at every interaction, and abnormal states are rare.

Planted mechanism (what the paper's analysis needs):

* users belong to taste communities and normally interact with a preferred
  item subset at a personal base rate;
* an abnormal episode changes *behaviour*: bursty activity (rapid degree
  growth — a structural cue, which is why process S wins on these datasets
  in Table IV), uniformly random item targets, and shifted edge features;
* a fraction of users only appears in the test period (unseen nodes), and
  item popularity drifts over time (structural + positional shift).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.datasets.base import StreamDataset
from repro.datasets.generators import assign_communities, zipf_weights
from repro.streams.ctdg import CTDG
from repro.tasks.anomaly import AnomalyTask
from repro.tasks.base import QuerySet
from repro.utils.rng import new_rng


@dataclass
class AnomalyStreamConfig:
    """Knobs for the anomaly-detection stream generator."""

    num_users: int = 120
    num_items: int = 200
    num_edges: int = 4000
    edge_feature_dim: int = 8
    num_communities: int = 6
    intra_prob: float = 0.85
    popular_item_frac: float = 0.3  # share of items normal users ever touch
    abnormal_user_frac: float = 0.3
    episodes_per_user: float = 2.0  # mean number of short abnormal episodes
    abnormal_duration_frac: float = 0.025  # single-episode length vs. span
    burst_factor: float = 8.0
    feature_shift: float = 1.2
    founder_frac: float = 0.35  # users active from t = 0
    session_width_frac: float = 0.45  # active-lifetime length vs. span
    cold_item_arrival_frac: float = 0.8  # share of cold items arriving late
    popularity_churn: float = 0.35  # share of each popular pool rotated per event
    churn_events: int = 10  # number of popularity-rotation points over the span
    user_migration_frac: float = 0.4  # users whose community drifts (Fig. 3a)
    seed: int = 0


def generate_anomaly_stream(
    config: Optional[AnomalyStreamConfig] = None, name: str = "reddit-like"
) -> StreamDataset:
    """Generate a Wikipedia/Reddit/MOOC-shaped anomaly-detection dataset."""
    cfg = config or AnomalyStreamConfig()
    rng = new_rng(cfg.seed)
    n_users, n_items = cfg.num_users, cfg.num_items
    # Item ids live above user ids in a single id space.
    item_offset = n_users
    num_nodes = n_users + n_items

    user_comm = assign_communities(n_users, cfg.num_communities, rng)
    item_comm = assign_communities(n_items, cfg.num_communities, rng)
    horizon = float(cfg.num_edges)  # unit-rate clock → span ≈ num_edges
    # Item universe splits into a *popular core* that normal users frequent
    # (heavy-tailed popularity within their community) and a long *cold
    # tail* only abnormal behaviour reaches.  A large share of the cold tail
    # arrives over time, so a low-degree interaction partner is a stable,
    # training-transferable anomaly cue — while item *identity* is not.
    num_popular = max(cfg.num_communities, int(n_items * cfg.popular_item_frac))
    popular_items = rng.choice(n_items, size=num_popular, replace=False)
    popular_mask = np.zeros(n_items, dtype=bool)
    popular_mask[popular_items] = True
    items_of_comm = []
    item_pop_of_comm = []
    for c in range(cfg.num_communities):
        members = np.nonzero((item_comm == c) & popular_mask)[0]
        if members.size == 0:
            members = np.nonzero(item_comm == c)[0]
        items_of_comm.append(members)  # raw item indices (offset added later)
        item_pop_of_comm.append(zipf_weights(len(members), exponent=1.2, rng=rng))
    item_activation = np.zeros(n_items)
    cold_items = np.nonzero(~popular_mask)[0]
    if cold_items.size:
        late = rng.choice(
            cold_items,
            size=int(len(cold_items) * cfg.cold_item_arrival_frac),
            replace=False,
        )
        item_activation[late] = rng.uniform(
            0.05 * horizon, 0.95 * horizon, size=len(late)
        )
    # Popularity churn (the structural drift of paper Fig. 3b): at each churn
    # point a share of every community's popular pool is replaced by freshly
    # trending items from the cold tail.  Memorising item identities then
    # goes stale, while *current degree* remains a live popularity readout.
    churn_times = (
        np.linspace(0.0, horizon, cfg.churn_events + 2)[1:-1]
        if cfg.churn_events > 0
        else np.zeros(0)
    )
    user_activity = zipf_weights(n_users, exponent=0.8, rng=rng)

    # Positional drift (paper Fig. 3a): a share of users migrates to another
    # taste community mid-stream, so positional embeddings of the training
    # snapshot go stale during the test period.
    migrators = rng.choice(
        n_users, size=int(n_users * cfg.user_migration_frac), replace=False
    )
    migration_time = {
        int(u): float(rng.uniform(0.08 * horizon, 0.9 * horizon)) for u in migrators
    }
    migration_target = {
        int(u): int(
            (user_comm[u] + 1 + rng.integers(0, cfg.num_communities - 1))
            % cfg.num_communities
        )
        for u in migrators
    }

    def community_of(user: int, now: float) -> int:
        when = migration_time.get(user)
        if when is not None and now >= when:
            return migration_target[user]
        return int(user_comm[user])

    def rotate_popular_pools(now: float) -> None:
        for c in range(cfg.num_communities):
            pool = items_of_comm[c]
            swaps = int(len(pool) * cfg.popularity_churn)
            if swaps == 0:
                continue
            replace_slots = rng.choice(len(pool), size=swaps, replace=False)
            candidates = np.setdiff1d(
                np.nonzero(item_comm == item_comm[pool[0]])[0], pool
            )
            if candidates.size == 0:
                candidates = np.setdiff1d(np.arange(n_items), pool)
            fresh = rng.choice(
                candidates, size=min(swaps, candidates.size), replace=False
            )
            pool[replace_slots[: len(fresh)]] = fresh
            item_activation[fresh] = np.minimum(item_activation[fresh], now)
            item_pop_of_comm[c] = zipf_weights(len(pool), exponent=1.2, rng=rng)
    # Per-community base vector for edge features; users inherit it.
    comm_profiles = rng.normal(
        0.0, 1.0, size=(cfg.num_communities, cfg.edge_feature_dim)
    )
    shift_direction = rng.normal(0.0, 1.0, size=cfg.edge_feature_dim)
    shift_direction /= np.linalg.norm(shift_direction)

    # User turnover: founders are active from the start; the rest join
    # uniformly over the span and every user has a finite activity window.
    # This keeps the *degree distribution of active users* quasi-stationary
    # (as in real platforms with churn) and continuously supplies unseen
    # nodes to the test period.
    activation = rng.uniform(0.0, 0.85 * horizon, size=n_users)
    founders = rng.choice(n_users, size=int(n_users * cfg.founder_frac), replace=False)
    activation[founders] = 0.0
    session_width = cfg.session_width_frac * horizon * rng.uniform(
        0.6, 1.4, size=n_users
    )
    retirement = activation + session_width

    # Abnormal episodes: a subset of users exhibits several *short* abnormal
    # bursts scattered over the whole span.  Identity then tells a model who
    # is at risk but not *when* they misbehave — the temporal signal lives
    # in behaviour (burstiness, unpopular targets), matching the character
    # of the real ban/dropout labels in the JODIE datasets.
    abnormal_users = rng.choice(
        n_users, size=max(1, int(n_users * cfg.abnormal_user_frac)), replace=False
    )
    duration = cfg.abnormal_duration_frac * horizon
    episodes: dict = {}
    for user in abnormal_users:
        count = 1 + rng.poisson(max(cfg.episodes_per_user - 1, 0.0))
        # Episodes must fall inside the user's activity window to produce edges.
        lo = max(activation[user], 0.03 * horizon)
        hi = min(retirement[user], 0.97 * horizon) - duration
        if hi <= lo:
            continue
        starts = rng.uniform(lo, hi, size=count)
        episodes[int(user)] = [(float(s), float(s + duration)) for s in np.sort(starts)]

    def is_abnormal(user: int, t: float) -> bool:
        windows = episodes.get(user)
        if not windows:
            return False
        return any(start <= t < stop for start, stop in windows)

    src, dst, times, feats, labels = [], [], [], [], []
    t = 0.0
    churn_ptr = 0
    while len(src) < cfg.num_edges:
        t += rng.exponential(1.0)
        while churn_ptr < len(churn_times) and churn_times[churn_ptr] <= t:
            rotate_popular_pools(float(churn_times[churn_ptr]))
            churn_ptr += 1
        active = (activation <= t) & (t < retirement)
        if not np.any(active):
            continue
        weights = user_activity * active
        # Burst: users inside an abnormal episode interact far more often.
        burst = np.ones(n_users)
        for user, windows in episodes.items():
            if any(start <= t < stop for start, stop in windows):
                burst[user] = cfg.burst_factor
        weights = weights * burst
        weights_sum = weights.sum()
        if weights_sum <= 0:
            continue
        user = int(rng.choice(n_users, p=weights / weights_sum))
        abnormal = is_abnormal(user, t)
        available_items = np.nonzero(item_activation <= t)[0]
        if abnormal:
            # Uniform over currently available items: overwhelmingly cold,
            # out-of-community, often recently created ones.
            item = int(rng.choice(available_items)) + item_offset
        else:
            community = community_of(user, t)
            pool = items_of_comm[community]
            if rng.random() < cfg.intra_prob and pool.size:
                item = (
                    int(rng.choice(pool, p=item_pop_of_comm[community])) + item_offset
                )
            else:
                item = int(rng.choice(available_items)) + item_offset
        feature = comm_profiles[community_of(user, t)] + rng.normal(
            0.0, 0.5, size=cfg.edge_feature_dim
        )
        if abnormal:
            feature = feature + cfg.feature_shift * shift_direction
        src.append(user)
        dst.append(item)
        times.append(t)
        feats.append(feature)
        labels.append(1 if abnormal else 0)

    ctdg = CTDG(
        np.array(src, dtype=np.int64),
        np.array(dst, dtype=np.int64),
        np.array(times),
        edge_features=np.stack(feats),
        num_nodes=num_nodes,
    )
    # One state query per interaction, on the user endpoint — the JODIE
    # protocol for dynamic state change labelling.
    queries = QuerySet(np.array(src, dtype=np.int64), np.array(times))
    task = AnomalyTask(np.array(labels, dtype=np.int64))
    return StreamDataset(
        name=name,
        ctdg=ctdg,
        queries=queries,
        task=task,
        metadata={
            "num_users": n_users,
            "num_items": n_items,
            "abnormal_users": np.sort(abnormal_users),
            "episodes": episodes,
            "user_communities": user_comm,
            "config": cfg,
        },
    )


def reddit_like(seed: int = 0, num_edges: int = 4000) -> StreamDataset:
    """Reddit-shaped: many bursty abnormal episodes, strong feature shift."""
    return generate_anomaly_stream(
        AnomalyStreamConfig(num_edges=num_edges, seed=seed), name="reddit-like"
    )


def wiki_like(seed: int = 0, num_edges: int = 3500) -> StreamDataset:
    """Wikipedia-shaped: fewer users, rarer and shorter abnormal episodes."""
    return generate_anomaly_stream(
        AnomalyStreamConfig(
            num_users=90,
            num_items=150,
            num_edges=num_edges,
            abnormal_user_frac=0.35,
            episodes_per_user=2.0,
            abnormal_duration_frac=0.02,
            burst_factor=6.0,
            seed=seed,
        ),
        name="wiki-like",
    )


def mooc_like(seed: int = 0, num_edges: int = 4500) -> StreamDataset:
    """MOOC-shaped: small item set (courses), weaker edge-feature signal so
    the behavioural (structural) cue dominates."""
    return generate_anomaly_stream(
        AnomalyStreamConfig(
            num_users=150,
            num_items=80,
            num_edges=num_edges,
            edge_feature_dim=4,
            feature_shift=0.6,
            burst_factor=8.0,
            abnormal_user_frac=0.3,
            episodes_per_user=2.0,
            abnormal_duration_frac=0.02,
            # Course-taking communities are comparatively stable; with less
            # positional drift the positional process stays usable.
            user_migration_frac=0.15,
            seed=seed,
        ),
        name="mooc-like",
    )
