"""Synthetic stand-ins for the TGB node-affinity datasets (tgbn-trade,
tgbn-genre).

Shape of the real data: weighted interaction streams with periodic affinity
labels — yearly country→country trade shares, and weekly user→genre
listening shares.  Labels are the L1-normalised future edge weights over
the next period (built here with the same
:func:`repro.tasks.affinity.build_affinity_queries` machinery a TGB loader
would use).

Planted mechanisms mirror the Table IV outcome:

* **trade-like** — small unipartite graph; each country has *idiosyncratic*
  partner preferences (no community structure), persistent but slowly
  drifting, with a regime change late in the stream.  Identity is the only
  useful signal → process R should win.
* **genre-like** — bipartite users×genres; user preferences follow *taste
  clusters* plus small personal noise, and new users keep arriving.
  Community position generalises to unseen users → process P should win.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.datasets.base import StreamDataset
from repro.datasets.generators import drifting_preferences
from repro.streams.ctdg import CTDG
from repro.tasks.affinity import AffinityLabelSpec, AffinityTask, build_affinity_queries
from repro.utils.rng import new_rng


@dataclass
class TradeStreamConfig:
    num_countries: int = 60
    num_periods: int = 40
    edges_per_period: int = 150
    preference_concentration: float = 0.15  # Dirichlet α: small → idiosyncratic
    drift_rate: float = 0.02
    regime_change_period: float = 0.7  # fraction of periods at which shock hits
    regime_frac: float = 0.3  # fraction of countries whose preferences reset
    seed: int = 0


def generate_trade_stream(
    config: Optional[TradeStreamConfig] = None, name: str = "tgbn-trade-like"
) -> StreamDataset:
    cfg = config or TradeStreamConfig()
    rng = new_rng(cfg.seed)
    n = cfg.num_countries

    preferences = rng.dirichlet(
        np.full(n, cfg.preference_concentration), size=n
    )  # row i: country i's partner shares
    np.fill_diagonal(preferences, 0.0)
    preferences /= preferences.sum(axis=1, keepdims=True)

    shock_period = int(cfg.num_periods * cfg.regime_change_period)
    shocked = rng.choice(n, size=int(n * cfg.regime_frac), replace=False)

    src, dst, times, weights = [], [], [], []
    for period in range(cfg.num_periods):
        if period == shock_period:
            fresh = rng.dirichlet(
                np.full(n, cfg.preference_concentration), size=len(shocked)
            )
            for row, country in enumerate(shocked):
                vector = fresh[row].copy()
                vector[country] = 0.0
                preferences[country] = vector / vector.sum()
        preferences = drifting_preferences(preferences, cfg.drift_rate, rng)
        np.fill_diagonal(preferences, 0.0)
        preferences /= preferences.sum(axis=1, keepdims=True)

        exporters = rng.integers(0, n, size=cfg.edges_per_period)
        offsets = np.sort(rng.uniform(0.0, 1.0, size=cfg.edges_per_period))
        for exporter, offset in zip(exporters, offsets):
            partner = int(rng.choice(n, p=preferences[exporter]))
            volume = float(
                rng.lognormal(0.0, 0.5)
                * (1.0 + 10.0 * preferences[exporter][partner])
            )
            src.append(int(exporter))
            dst.append(partner)
            times.append(period + float(offset))
            weights.append(volume)

    order = np.argsort(times, kind="stable")
    ctdg = CTDG(
        np.asarray(src, dtype=np.int64)[order],
        np.asarray(dst, dtype=np.int64)[order],
        np.asarray(times)[order],
        weights=np.asarray(weights)[order],
        num_nodes=n,
    )
    queries, labels, targets = build_affinity_queries(
        ctdg, AffinityLabelSpec(period=1.0)
    )
    task = AffinityTask(labels)
    return StreamDataset(
        name=name,
        ctdg=ctdg,
        queries=queries,
        task=task,
        metadata={"targets": targets, "config": cfg, "period": 1.0},
    )


@dataclass
class GenreStreamConfig:
    num_users: int = 200
    num_genres: int = 40
    num_taste_clusters: int = 6
    num_periods: int = 30
    edges_per_period: int = 250
    cluster_concentration: float = 0.5
    personal_noise: float = 0.1
    drift_rate: float = 0.03
    unseen_frac: float = 0.3
    unseen_start: float = 0.55
    seed: int = 0


def generate_genre_stream(
    config: Optional[GenreStreamConfig] = None, name: str = "tgbn-genre-like"
) -> StreamDataset:
    cfg = config or GenreStreamConfig()
    rng = new_rng(cfg.seed)
    n_users, n_genres = cfg.num_users, cfg.num_genres
    genre_offset = n_users

    cluster_of = rng.integers(0, cfg.num_taste_clusters, size=n_users)
    cluster_prefs = rng.dirichlet(
        np.full(n_genres, cfg.cluster_concentration), size=cfg.num_taste_clusters
    )
    personal = rng.dirichlet(np.ones(n_genres), size=n_users)
    preferences = (
        (1 - cfg.personal_noise) * cluster_prefs[cluster_of]
        + cfg.personal_noise * personal
    )
    preferences /= preferences.sum(axis=1, keepdims=True)

    activation = np.zeros(n_users)
    unseen = rng.choice(n_users, size=int(n_users * cfg.unseen_frac), replace=False)
    activation[unseen] = rng.uniform(
        cfg.unseen_start * cfg.num_periods, 0.95 * cfg.num_periods, size=len(unseen)
    )

    src, dst, times, weights = [], [], [], []
    for period in range(cfg.num_periods):
        cluster_prefs = drifting_preferences(cluster_prefs, cfg.drift_rate, rng)
        preferences = (
            (1 - cfg.personal_noise) * cluster_prefs[cluster_of]
            + cfg.personal_noise * personal
        )
        preferences /= preferences.sum(axis=1, keepdims=True)
        active = np.nonzero(activation <= period)[0]
        if active.size == 0:
            continue
        listeners = rng.choice(active, size=cfg.edges_per_period)
        offsets = np.sort(rng.uniform(0.0, 1.0, size=cfg.edges_per_period))
        for listener, offset in zip(listeners, offsets):
            genre = int(rng.choice(n_genres, p=preferences[listener]))
            src.append(int(listener))
            dst.append(genre + genre_offset)
            times.append(period + float(offset))
            weights.append(float(rng.lognormal(0.0, 0.3)))

    order = np.argsort(times, kind="stable")
    ctdg = CTDG(
        np.asarray(src, dtype=np.int64)[order],
        np.asarray(dst, dtype=np.int64)[order],
        np.asarray(times)[order],
        weights=np.asarray(weights)[order],
        num_nodes=n_users + n_genres,
    )
    queries, labels, targets = build_affinity_queries(
        ctdg, AffinityLabelSpec(period=1.0)
    )
    task = AffinityTask(labels)
    return StreamDataset(
        name=name,
        ctdg=ctdg,
        queries=queries,
        task=task,
        metadata={
            "targets": targets,
            "cluster_of": cluster_of,
            "config": cfg,
            "period": 1.0,
        },
    )


def tgbn_trade_like(seed: int = 0) -> StreamDataset:
    return generate_trade_stream(TradeStreamConfig(seed=seed))


def tgbn_genre_like(seed: int = 0) -> StreamDataset:
    return generate_genre_stream(GenreStreamConfig(seed=seed))
