"""Synthetic-50/70/90: classification streams with controllable
distribution-shift intensity (paper §V-A, Fig. 12).

Shift intensity s ∈ [0, 100] controls, after the training boundary:

* the fraction of activity carried by *unseen* nodes (positional shift);
* the fraction of seen nodes whose community — and therefore label — is
  re-sampled at the boundary (property shift);
* a change in activity skew (structural shift).

At s = 0 the test period is statistically identical to training; at s = 90
almost everything the model learned about specific nodes is stale, which is
exactly the stress test of Fig. 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.datasets.base import StreamDataset
from repro.datasets.generators import assign_communities, zipf_weights
from repro.streams.ctdg import CTDG
from repro.tasks.base import QuerySet
from repro.tasks.classification import ClassificationTask
from repro.utils.rng import new_rng


@dataclass
class ShiftStreamConfig:
    shift_intensity: float = 50.0  # 0-100
    num_core_nodes: int = 150
    num_new_nodes: int = 150
    num_classes: int = 6
    num_edges: int = 5000
    intra_prob: float = 0.9
    boundary_frac: float = 0.2  # the 10/10 train+val region of the query set
    query_prob: float = 0.7
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.shift_intensity <= 100:
            raise ValueError(
                f"shift_intensity must be in [0, 100], got {self.shift_intensity}"
            )


def generate_shift_stream(
    config: Optional[ShiftStreamConfig] = None, name: Optional[str] = None
) -> StreamDataset:
    cfg = config or ShiftStreamConfig()
    rng = new_rng(cfg.seed)
    s = cfg.shift_intensity / 100.0
    n_core, n_new = cfg.num_core_nodes, cfg.num_new_nodes
    n = n_core + n_new
    horizon = float(cfg.num_edges)
    boundary = cfg.boundary_frac * horizon

    communities = assign_communities(n, cfg.num_classes, rng)
    # Property shift: re-assign a fraction of core nodes at the boundary.
    # The fraction grows with s but stays minor — the dominant planted shift
    # is positional (unseen-node influx), as in the paper's synthetic setup;
    # relabeling most seen nodes would make the task information-theoretically
    # hopeless for every method rather than separating robust ones.
    migrators = rng.choice(n_core, size=int(n_core * 0.25 * s), replace=False)
    post_communities = communities.copy()
    for node in migrators:
        post_communities[node] = int(
            (communities[node] + 1 + rng.integers(0, cfg.num_classes - 1))
            % cfg.num_classes
        )

    # Structural shift: activity skew changes across the boundary.
    pre_activity = zipf_weights(n_core, exponent=0.8, rng=rng)
    post_core_activity = zipf_weights(n_core, exponent=0.8 + 0.8 * s, rng=rng)
    new_activity = zipf_weights(n_new, exponent=0.8, rng=rng) if n_new else np.zeros(0)

    src, dst, times = [], [], []
    q_nodes, q_times, q_labels = [], [], []
    t = 0.0
    while len(src) < cfg.num_edges:
        t += rng.exponential(1.0)
        in_test = t > boundary
        comm = post_communities if in_test else communities
        if in_test and n_new and rng.random() < s:
            # Positional shift: unseen nodes carry a share s of test activity.
            sender = n_core + int(rng.choice(n_new, p=new_activity))
            pool = np.arange(n)  # unseen nodes mix with everyone
        else:
            activity = post_core_activity if in_test else pre_activity
            sender = int(rng.choice(n_core, p=activity))
            pool = np.arange(n_core) if not in_test else np.arange(n)
        same = pool[(comm[pool] == comm[sender]) & (pool != sender)]
        other = pool[comm[pool] != comm[sender]]
        if same.size and (rng.random() < cfg.intra_prob or other.size == 0):
            receiver = int(rng.choice(same))
        elif other.size:
            receiver = int(rng.choice(other))
        else:
            continue
        src.append(sender)
        dst.append(receiver)
        times.append(t)
        if rng.random() < cfg.query_prob:
            q_nodes.append(sender)
            q_times.append(t)
            q_labels.append(int(comm[sender]))

    ctdg = CTDG(
        np.array(src, dtype=np.int64),
        np.array(dst, dtype=np.int64),
        np.array(times),
        num_nodes=n,
    )
    queries = QuerySet(np.array(q_nodes, dtype=np.int64), np.array(q_times))
    task = ClassificationTask(np.array(q_labels, dtype=np.int64), cfg.num_classes)
    return StreamDataset(
        name=name or f"synthetic-{int(cfg.shift_intensity)}",
        ctdg=ctdg,
        queries=queries,
        task=task,
        metadata={
            "communities": communities,
            "post_communities": post_communities,
            "boundary_time": boundary,
            "config": cfg,
        },
    )


def synthetic_shift(
    intensity: float, seed: int = 0, num_edges: int = 5000
) -> StreamDataset:
    """Synthetic-{50,70,90} of the paper (any intensity in [0, 100] works)."""
    return generate_shift_stream(
        ShiftStreamConfig(shift_intensity=intensity, num_edges=num_edges, seed=seed)
    )


@dataclass
class ScheduledShiftConfig:
    """Scenario streams with *scheduled* mid-stream shift points.

    Where :class:`ShiftStreamConfig` plants one shift at the train/test
    boundary (the paper's Fig.-12 protocol), this generator places any
    number of shifts at chosen fractions of the stream horizon — the
    end-to-end drill for the adaptation loop (``repro.adapt``): a serving
    system sees a stationary prefix, then one or more abrupt regime
    changes whose times are recorded in ``metadata["shift_times"]`` so
    drills can score pre/post-shift windows separately.

    Each shift of intensity s ∈ [0, 100] applies the same three facets as
    the boundary shift: a fraction of existing nodes migrate to new
    communities (property), a fresh cohort of previously-unseen nodes
    captures a share s of subsequent activity (positional), and the
    activity skew over existing nodes is re-drawn (structural).
    """

    shift_points: Sequence[float] = (0.5,)  # fractions of the horizon, ascending
    intensities: Sequence[float] = (70.0,)  # one per shift point
    num_core_nodes: int = 150
    new_nodes_per_shift: int = 120
    num_classes: int = 6
    num_edges: int = 6000
    intra_prob: float = 0.9
    query_prob: float = 0.7
    seed: int = 0

    def __post_init__(self) -> None:
        points = list(self.shift_points)
        if len(points) != len(self.intensities):
            raise ValueError(
                f"{len(points)} shift points but {len(self.intensities)} intensities"
            )
        if not points:
            raise ValueError("need at least one shift point")
        if any(not 0 < p < 1 for p in points):
            raise ValueError(f"shift points must lie in (0, 1), got {points}")
        if any(b <= a for a, b in zip(points, points[1:])):
            raise ValueError(f"shift points must be strictly ascending, got {points}")
        if any(not 0 <= s <= 100 for s in self.intensities):
            raise ValueError(
                f"intensities must be in [0, 100], got {list(self.intensities)}"
            )


@dataclass
class _Regime:
    """Sampling state of one inter-shift segment."""

    communities: np.ndarray  # label of every node (id space grows per shift)
    core_activity: np.ndarray  # activity over the established pool
    established: int  # nodes active before this segment's shift
    cohort_lo: int  # the segment's fresh cohort [cohort_lo, cohort_hi)
    cohort_hi: int
    cohort_activity: np.ndarray
    unseen_share: float  # share of activity the fresh cohort carries


def generate_scheduled_shift_stream(
    config: Optional[ScheduledShiftConfig] = None, name: Optional[str] = None
) -> StreamDataset:
    cfg = config or ScheduledShiftConfig()
    rng = new_rng(cfg.seed)
    num_shifts = len(cfg.shift_points)
    n = cfg.num_core_nodes + num_shifts * cfg.new_nodes_per_shift
    horizon = float(cfg.num_edges)
    shift_times = [float(p) * horizon for p in cfg.shift_points]

    communities = assign_communities(n, cfg.num_classes, rng)
    regimes: List[_Regime] = [
        _Regime(
            communities=communities,
            core_activity=zipf_weights(cfg.num_core_nodes, exponent=0.8, rng=rng),
            established=cfg.num_core_nodes,
            cohort_lo=0,
            cohort_hi=0,
            cohort_activity=np.zeros(0),
            unseen_share=0.0,
        )
    ]
    for shift, intensity in enumerate(cfg.intensities):
        s = float(intensity) / 100.0
        previous = regimes[-1]
        established = previous.established
        # Property shift: a fraction of established nodes migrate class.
        migrated = previous.communities.copy()
        movers = rng.choice(
            established, size=int(established * 0.25 * s), replace=False
        )
        for node in movers:
            migrated[node] = int(
                (migrated[node] + 1 + rng.integers(0, cfg.num_classes - 1))
                % cfg.num_classes
            )
        cohort_lo = cfg.num_core_nodes + shift * cfg.new_nodes_per_shift
        cohort_hi = cohort_lo + cfg.new_nodes_per_shift
        regimes.append(
            _Regime(
                communities=migrated,
                # Structural shift: skew re-drawn over the established pool.
                core_activity=zipf_weights(
                    established, exponent=0.8 + 0.8 * s, rng=rng
                ),
                established=cohort_hi,
                cohort_lo=cohort_lo,
                cohort_hi=cohort_hi,
                cohort_activity=zipf_weights(
                    cfg.new_nodes_per_shift, exponent=0.8, rng=rng
                ),
                # Positional shift: the fresh cohort carries share s.
                unseen_share=s,
            )
        )

    src, dst, times = [], [], []
    q_nodes, q_times, q_labels = [], [], []
    t = 0.0
    while len(src) < cfg.num_edges:
        t += rng.exponential(1.0)
        segment = int(np.searchsorted(shift_times, t, side="right"))
        regime = regimes[segment]
        comm = regime.communities
        if regime.unseen_share and rng.random() < regime.unseen_share:
            sender = regime.cohort_lo + int(
                rng.choice(len(regime.cohort_activity), p=regime.cohort_activity)
            )
            pool = np.arange(regime.established)  # cohort mixes with everyone
        else:
            sender = int(
                rng.choice(len(regime.core_activity), p=regime.core_activity)
            )
            pool = np.arange(regime.established)
        same = pool[(comm[pool] == comm[sender]) & (pool != sender)]
        other = pool[comm[pool] != comm[sender]]
        if same.size and (rng.random() < cfg.intra_prob or other.size == 0):
            receiver = int(rng.choice(same))
        elif other.size:
            receiver = int(rng.choice(other))
        else:
            continue
        src.append(sender)
        dst.append(receiver)
        times.append(t)
        if rng.random() < cfg.query_prob:
            q_nodes.append(sender)
            q_times.append(t)
            q_labels.append(int(comm[sender]))

    ctdg = CTDG(
        np.array(src, dtype=np.int64),
        np.array(dst, dtype=np.int64),
        np.array(times),
        num_nodes=n,
    )
    queries = QuerySet(np.array(q_nodes, dtype=np.int64), np.array(q_times))
    task = ClassificationTask(np.array(q_labels, dtype=np.int64), cfg.num_classes)
    return StreamDataset(
        name=name or f"scheduled-shift-{num_shifts}",
        ctdg=ctdg,
        queries=queries,
        task=task,
        metadata={
            "shift_times": shift_times,
            "intensities": [float(s) for s in cfg.intensities],
            "communities_per_regime": [r.communities for r in regimes],
            "config": cfg,
        },
    )


def scheduled_shift_stream(
    shift_at: float = 0.5,
    intensity: float = 70.0,
    seed: int = 0,
    num_edges: int = 6000,
) -> StreamDataset:
    """One scheduled mid-stream shift — the adaptation drill's default."""
    return generate_scheduled_shift_stream(
        ScheduledShiftConfig(
            shift_points=(shift_at,),
            intensities=(intensity,),
            num_edges=num_edges,
            seed=seed,
        )
    )
