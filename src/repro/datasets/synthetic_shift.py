"""Synthetic-50/70/90: classification streams with controllable
distribution-shift intensity (paper §V-A, Fig. 12).

Shift intensity s ∈ [0, 100] controls, after the training boundary:

* the fraction of activity carried by *unseen* nodes (positional shift);
* the fraction of seen nodes whose community — and therefore label — is
  re-sampled at the boundary (property shift);
* a change in activity skew (structural shift).

At s = 0 the test period is statistically identical to training; at s = 90
almost everything the model learned about specific nodes is stale, which is
exactly the stress test of Fig. 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.datasets.base import StreamDataset
from repro.datasets.generators import assign_communities, zipf_weights
from repro.streams.ctdg import CTDG
from repro.tasks.base import QuerySet
from repro.tasks.classification import ClassificationTask
from repro.utils.rng import SeedLike, new_rng


@dataclass
class ShiftStreamConfig:
    shift_intensity: float = 50.0  # 0-100
    num_core_nodes: int = 150
    num_new_nodes: int = 150
    num_classes: int = 6
    num_edges: int = 5000
    intra_prob: float = 0.9
    boundary_frac: float = 0.2  # the 10/10 train+val region of the query set
    query_prob: float = 0.7
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.shift_intensity <= 100:
            raise ValueError(
                f"shift_intensity must be in [0, 100], got {self.shift_intensity}"
            )


def generate_shift_stream(
    config: Optional[ShiftStreamConfig] = None, name: Optional[str] = None
) -> StreamDataset:
    cfg = config or ShiftStreamConfig()
    rng = new_rng(cfg.seed)
    s = cfg.shift_intensity / 100.0
    n_core, n_new = cfg.num_core_nodes, cfg.num_new_nodes
    n = n_core + n_new
    horizon = float(cfg.num_edges)
    boundary = cfg.boundary_frac * horizon

    communities = assign_communities(n, cfg.num_classes, rng)
    # Property shift: re-assign a fraction of core nodes at the boundary.
    # The fraction grows with s but stays minor — the dominant planted shift
    # is positional (unseen-node influx), as in the paper's synthetic setup;
    # relabeling most seen nodes would make the task information-theoretically
    # hopeless for every method rather than separating robust ones.
    migrators = rng.choice(n_core, size=int(n_core * 0.25 * s), replace=False)
    post_communities = communities.copy()
    for node in migrators:
        post_communities[node] = int(
            (communities[node] + 1 + rng.integers(0, cfg.num_classes - 1))
            % cfg.num_classes
        )

    # Structural shift: activity skew changes across the boundary.
    pre_activity = zipf_weights(n_core, exponent=0.8, rng=rng)
    post_core_activity = zipf_weights(n_core, exponent=0.8 + 0.8 * s, rng=rng)
    new_activity = zipf_weights(n_new, exponent=0.8, rng=rng) if n_new else np.zeros(0)

    src, dst, times = [], [], []
    q_nodes, q_times, q_labels = [], [], []
    t = 0.0
    while len(src) < cfg.num_edges:
        t += rng.exponential(1.0)
        in_test = t > boundary
        comm = post_communities if in_test else communities
        if in_test and n_new and rng.random() < s:
            # Positional shift: unseen nodes carry a share s of test activity.
            sender = n_core + int(rng.choice(n_new, p=new_activity))
            pool = np.arange(n)  # unseen nodes mix with everyone
        else:
            activity = post_core_activity if in_test else pre_activity
            sender = int(rng.choice(n_core, p=activity))
            pool = np.arange(n_core) if not in_test else np.arange(n)
        same = pool[(comm[pool] == comm[sender]) & (pool != sender)]
        other = pool[comm[pool] != comm[sender]]
        if same.size and (rng.random() < cfg.intra_prob or other.size == 0):
            receiver = int(rng.choice(same))
        elif other.size:
            receiver = int(rng.choice(other))
        else:
            continue
        src.append(sender)
        dst.append(receiver)
        times.append(t)
        if rng.random() < cfg.query_prob:
            q_nodes.append(sender)
            q_times.append(t)
            q_labels.append(int(comm[sender]))

    ctdg = CTDG(
        np.array(src, dtype=np.int64),
        np.array(dst, dtype=np.int64),
        np.array(times),
        num_nodes=n,
    )
    queries = QuerySet(np.array(q_nodes, dtype=np.int64), np.array(q_times))
    task = ClassificationTask(np.array(q_labels, dtype=np.int64), cfg.num_classes)
    return StreamDataset(
        name=name or f"synthetic-{int(cfg.shift_intensity)}",
        ctdg=ctdg,
        queries=queries,
        task=task,
        metadata={
            "communities": communities,
            "post_communities": post_communities,
            "boundary_time": boundary,
            "config": cfg,
        },
    )


def synthetic_shift(intensity: float, seed: int = 0, num_edges: int = 5000) -> StreamDataset:
    """Synthetic-{50,70,90} of the paper (any intensity in [0, 100] works)."""
    return generate_shift_stream(
        ShiftStreamConfig(shift_intensity=intensity, num_edges=num_edges, seed=seed)
    )
