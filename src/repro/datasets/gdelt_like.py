"""Synthetic stand-in for the GDELT dynamic node classification dataset.

Shape of the real data: a large event stream with many classes (81) and
node classes that drift over time; absolute F1 is low for every method
(≈ 10-25 % in Table III) because labels are only weakly predictable.

Planted mechanism: communities with *continuous* membership churn (every
node re-samples its community at random times), plus heavy label noise that
caps achievable F1, plus unseen-node influx.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.datasets.base import StreamDataset
from repro.datasets.generators import assign_communities
from repro.streams.ctdg import CTDG
from repro.tasks.base import QuerySet
from repro.tasks.classification import ClassificationTask
from repro.utils.rng import new_rng


@dataclass
class GdeltStreamConfig:
    num_nodes: int = 300
    num_classes: int = 20
    num_edges: int = 6000
    intra_prob: float = 0.75
    churn_rate: float = 0.4  # expected re-assignments per node over the span
    label_noise: float = 0.45
    unseen_frac: float = 0.15
    unseen_start: float = 0.6
    query_prob: float = 0.4
    seed: int = 0


def generate_gdelt_stream(
    config: Optional[GdeltStreamConfig] = None, name: str = "gdelt-like"
) -> StreamDataset:
    cfg = config or GdeltStreamConfig()
    rng = new_rng(cfg.seed)
    n = cfg.num_nodes
    horizon = float(cfg.num_edges)
    communities = assign_communities(n, cfg.num_classes, rng)

    # Churn events: each node re-samples its community at Poisson times.
    churn_events = []
    for node in range(n):
        count = rng.poisson(cfg.churn_rate)
        for _ in range(count):
            churn_events.append(
                (
                    float(rng.uniform(0, horizon)),
                    node,
                    int(rng.integers(0, cfg.num_classes)),
                )
            )
    churn_events.sort()

    activation = np.zeros(n)
    unseen = rng.choice(n, size=int(n * cfg.unseen_frac), replace=False)
    activation[unseen] = rng.uniform(
        cfg.unseen_start * horizon, 0.95 * horizon, size=len(unseen)
    )

    src, dst, times = [], [], []
    q_nodes, q_times, q_labels = [], [], []
    current = np.array(communities)
    churn_ptr = 0
    t = 0.0
    while len(src) < cfg.num_edges:
        t += rng.exponential(1.0)
        while churn_ptr < len(churn_events) and churn_events[churn_ptr][0] <= t:
            _, node, new_class = churn_events[churn_ptr]
            current[node] = new_class
            churn_ptr += 1
        active = np.nonzero(activation <= t)[0]
        if active.size < 2:
            continue
        sender = int(rng.choice(active))
        same = active[(current[active] == current[sender]) & (active != sender)]
        other = active[current[active] != current[sender]]
        if same.size and (rng.random() < cfg.intra_prob or other.size == 0):
            receiver = int(rng.choice(same))
        elif other.size:
            receiver = int(rng.choice(other))
        else:
            continue
        src.append(sender)
        dst.append(receiver)
        times.append(t)
        if rng.random() < cfg.query_prob:
            label = int(current[sender])
            if rng.random() < cfg.label_noise:
                label = int(rng.integers(0, cfg.num_classes))
            q_nodes.append(sender)
            q_times.append(t)
            q_labels.append(label)

    ctdg = CTDG(
        np.array(src, dtype=np.int64),
        np.array(dst, dtype=np.int64),
        np.array(times),
        num_nodes=n,
    )
    queries = QuerySet(np.array(q_nodes, dtype=np.int64), np.array(q_times))
    task = ClassificationTask(np.array(q_labels, dtype=np.int64), cfg.num_classes)
    return StreamDataset(
        name=name,
        ctdg=ctdg,
        queries=queries,
        task=task,
        metadata={"initial_communities": communities, "config": cfg},
    )


def gdelt_like(seed: int = 0, num_edges: int = 6000) -> StreamDataset:
    return generate_gdelt_stream(GdeltStreamConfig(num_edges=num_edges, seed=seed))
