"""Synthetic stand-in for the Email-EU dynamic node classification dataset.

Shape of the real data: e-mails between researchers of an EU institution;
the node property is the sender's *department*, and edges are heavily
intra-department.  In the paper this is the dataset where featureless TGNNs
collapse (F1 ≈ 10 %) while identity/positional features recover F1 > 90 %,
and where process S is useless (degree carries no department signal).

Planted mechanism:

* node class = department; interactions are intra-department w.p.
  ``intra_prob``;
* departments have equal sizes and activity, so *degree is uninformative*;
* a fraction of nodes migrates to a new department mid-stream (property +
  positional shift), after which their edges and label follow the new one;
* a fraction of nodes activates only late (unseen nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.datasets.base import StreamDataset
from repro.datasets.generators import assign_communities
from repro.streams.ctdg import CTDG
from repro.tasks.base import QuerySet
from repro.tasks.classification import ClassificationTask
from repro.utils.rng import new_rng


@dataclass
class EmailStreamConfig:
    num_nodes: int = 160
    num_departments: int = 8
    num_edges: int = 4000
    intra_prob: float = 0.9
    migrate_frac: float = 0.1
    unseen_frac: float = 0.25
    unseen_start: float = 0.55
    query_prob: float = 0.6
    seed: int = 0


def generate_email_stream(
    config: Optional[EmailStreamConfig] = None, name: str = "email-eu-like"
) -> StreamDataset:
    cfg = config or EmailStreamConfig()
    rng = new_rng(cfg.seed)
    n = cfg.num_nodes
    departments = assign_communities(n, cfg.num_departments, rng)
    horizon = float(cfg.num_edges)

    # Department migrations: (node, time, new department).
    migrators = rng.choice(n, size=int(n * cfg.migrate_frac), replace=False)
    migration_time = {
        int(v): float(rng.uniform(0.3 * horizon, 0.9 * horizon)) for v in migrators
    }
    migration_target = {
        int(v): int(
            (departments[v] + 1 + rng.integers(0, cfg.num_departments - 1))
            % cfg.num_departments
        )
        for v in migrators
    }

    activation = np.zeros(n)
    unseen = rng.choice(n, size=int(n * cfg.unseen_frac), replace=False)
    activation[unseen] = rng.uniform(
        cfg.unseen_start * horizon, 0.95 * horizon, size=len(unseen)
    )

    def department_at(node: int, t: float) -> int:
        when = migration_time.get(node)
        if when is not None and t >= when:
            return migration_target[node]
        return int(departments[node])

    src, dst, times = [], [], []
    q_nodes, q_times, q_labels = [], [], []
    t = 0.0
    current = np.array(departments)
    while len(src) < cfg.num_edges:
        t += rng.exponential(1.0)
        active = np.nonzero(activation <= t)[0]
        if active.size < 2:
            continue
        sender = int(rng.choice(active))
        sender_dep = department_at(sender, t)
        # Keep the vectorised department view current for partner choice.
        for node, when in migration_time.items():
            if t >= when:
                current[node] = migration_target[node]
        same = active[(current[active] == sender_dep) & (active != sender)]
        other = active[current[active] != sender_dep]
        if same.size and (rng.random() < cfg.intra_prob or other.size == 0):
            receiver = int(rng.choice(same))
        elif other.size:
            receiver = int(rng.choice(other))
        else:
            continue
        src.append(sender)
        dst.append(receiver)
        times.append(t)
        if rng.random() < cfg.query_prob:
            q_nodes.append(sender)
            q_times.append(t)
            q_labels.append(sender_dep)

    ctdg = CTDG(
        np.array(src, dtype=np.int64),
        np.array(dst, dtype=np.int64),
        np.array(times),
        num_nodes=n,
    )
    queries = QuerySet(np.array(q_nodes, dtype=np.int64), np.array(q_times))
    task = ClassificationTask(np.array(q_labels, dtype=np.int64), cfg.num_departments)
    return StreamDataset(
        name=name,
        ctdg=ctdg,
        queries=queries,
        task=task,
        metadata={
            "departments": departments,
            "migrators": np.sort(migrators),
            "config": cfg,
        },
    )


def email_eu_like(seed: int = 0, num_edges: int = 4000) -> StreamDataset:
    return generate_email_stream(EmailStreamConfig(num_edges=num_edges, seed=seed))
