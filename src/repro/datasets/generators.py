"""Low-level building blocks for the synthetic dataset generators.

The real datasets in the paper could not be shipped in this offline
environment (see DESIGN.md §2); these primitives let each generator plant
the *mechanisms* the paper studies — communities (positional signal), skewed
activity (structural signal), temporal drift and unseen-node influx
(distribution shift) — with controllable intensity.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.rng import SeedLike, new_rng


def zipf_weights(n: int, exponent: float = 1.0, rng: SeedLike = None) -> np.ndarray:
    """Normalised heavy-tailed activity weights, shuffled over ids.

    Rank-based Zipf: w_r ∝ (r+1)^{-exponent}.  Shuffling decouples node id
    from popularity so ids carry no accidental structural signal.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    rng = new_rng(rng)
    weights = (np.arange(1, n + 1)) ** (-float(exponent))
    rng.shuffle(weights)
    return weights / weights.sum()


def assign_communities(
    n: int, num_communities: int, rng: SeedLike = None
) -> np.ndarray:
    """Balanced random community assignment over ``n`` nodes."""
    if num_communities <= 0 or n <= 0:
        raise ValueError("n and num_communities must be positive")
    rng = new_rng(rng)
    assignment = np.arange(n) % num_communities
    rng.shuffle(assignment)
    return assignment


def draw_partner(
    node: int,
    communities: np.ndarray,
    intra_prob: float,
    rng: np.random.Generator,
    candidate_pool: Optional[np.ndarray] = None,
) -> int:
    """Sample an interaction partner: same community w.p. ``intra_prob``.

    ``candidate_pool`` restricts partners (e.g., to already-active nodes so
    the stream has no isolated forward references).
    """
    pool = candidate_pool if candidate_pool is not None else np.arange(len(communities))
    if pool.size < 2:
        raise ValueError("candidate pool too small to draw a distinct partner")
    same = communities[pool] == communities[node]
    same_pool = pool[same & (pool != node)]
    other_pool = pool[~same]
    if same_pool.size and (rng.random() < intra_prob or other_pool.size == 0):
        return int(rng.choice(same_pool))
    if other_pool.size:
        return int(rng.choice(other_pool))
    return int(rng.choice(pool[pool != node]))


def exponential_clock(
    num_events: int, rate: float = 1.0, rng: SeedLike = None
) -> np.ndarray:
    """Strictly increasing event times with i.i.d. exponential gaps."""
    if num_events <= 0:
        raise ValueError(f"num_events must be positive, got {num_events}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    rng = new_rng(rng)
    gaps = rng.exponential(1.0 / rate, size=num_events)
    return np.cumsum(gaps)


def staggered_arrivals(
    n: int,
    horizon: float,
    late_fraction: float,
    late_start: float,
    rng: SeedLike = None,
) -> np.ndarray:
    """Node activation times: most nodes active from t=0, a ``late_fraction``
    activates uniformly in [late_start·horizon, horizon].

    Late nodes are the *unseen nodes* of the paper's distribution-shift
    analysis when ``late_start`` exceeds the training fraction.
    """
    if not 0 <= late_fraction <= 1:
        raise ValueError(f"late_fraction must be in [0, 1], got {late_fraction}")
    if not 0 <= late_start < 1:
        raise ValueError(f"late_start must be in [0, 1), got {late_start}")
    rng = new_rng(rng)
    arrivals = np.zeros(n)
    num_late = int(round(n * late_fraction))
    if num_late:
        late_ids = rng.choice(n, size=num_late, replace=False)
        arrivals[late_ids] = rng.uniform(late_start * horizon, horizon, size=num_late)
    return arrivals


def drifting_preferences(
    base: np.ndarray,
    drift_rate: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """One drift step: mix each row of ``base`` toward a fresh random
    distribution with weight ``drift_rate`` and renormalise."""
    if not 0 <= drift_rate <= 1:
        raise ValueError(f"drift_rate must be in [0, 1], got {drift_rate}")
    if drift_rate == 0:
        return base
    noise = rng.random(base.shape)
    noise /= noise.sum(axis=-1, keepdims=True)
    mixed = (1 - drift_rate) * base + drift_rate * noise
    return mixed / mixed.sum(axis=-1, keepdims=True)
