"""Dataset statistics tables (reproduces the role of paper Table II)."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.datasets.base import StreamDataset


def statistics_table(datasets: Sequence[StreamDataset]) -> List[Dict[str, object]]:
    """One summary row per dataset, in the given order."""
    return [dataset.summary() for dataset in datasets]


def format_statistics(rows: Sequence[Dict[str, object]]) -> str:
    """Render rows as an aligned text table (printed by the benchmarks)."""
    if not rows:
        return "(no datasets)"
    columns = [
        "name",
        "task",
        "num_nodes",
        "num_edges",
        "num_queries",
        "edge_feature_dim",
        "has_edge_weights",
        "num_labels",
    ]
    header = {
        "name": "dataset",
        "task": "task",
        "num_nodes": "#nodes",
        "num_edges": "#edges",
        "num_queries": "#queries",
        "edge_feature_dim": "d_e",
        "has_edge_weights": "weighted",
        "num_labels": "#labels",
    }
    widths = {
        c: max(len(header[c]), *(len(str(r[c])) for r in rows)) for c in columns
    }
    lines = [
        "  ".join(header[c].ljust(widths[c]) for c in columns),
        "  ".join("-" * widths[c] for c in columns),
    ]
    for row in rows:
        lines.append("  ".join(str(row[c]).ljust(widths[c]) for c in columns))
    return "\n".join(lines)
