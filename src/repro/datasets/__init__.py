"""``repro.datasets`` — synthetic equivalents of the paper's seven datasets
plus the Synthetic-50/70/90 shift benchmarks (see DESIGN.md §2 for the
substitution rationale)."""

from repro.datasets.anomaly_like import (
    AnomalyStreamConfig,
    generate_anomaly_stream,
    mooc_like,
    reddit_like,
    wiki_like,
)
from repro.datasets.base import StreamDataset
from repro.datasets.email_eu_like import (
    EmailStreamConfig,
    email_eu_like,
    generate_email_stream,
)
from repro.datasets.gdelt_like import (
    GdeltStreamConfig,
    gdelt_like,
    generate_gdelt_stream,
)
from repro.datasets.statistics import format_statistics, statistics_table
from repro.datasets.synthetic_shift import (
    ScheduledShiftConfig,
    ShiftStreamConfig,
    generate_scheduled_shift_stream,
    generate_shift_stream,
    scheduled_shift_stream,
    synthetic_shift,
)
from repro.datasets.tgbn_like import (
    GenreStreamConfig,
    TradeStreamConfig,
    generate_genre_stream,
    generate_trade_stream,
    tgbn_genre_like,
    tgbn_trade_like,
)

__all__ = [
    "StreamDataset",
    "AnomalyStreamConfig",
    "generate_anomaly_stream",
    "reddit_like",
    "wiki_like",
    "mooc_like",
    "EmailStreamConfig",
    "generate_email_stream",
    "email_eu_like",
    "GdeltStreamConfig",
    "generate_gdelt_stream",
    "gdelt_like",
    "TradeStreamConfig",
    "GenreStreamConfig",
    "generate_trade_stream",
    "generate_genre_stream",
    "tgbn_trade_like",
    "tgbn_genre_like",
    "ShiftStreamConfig",
    "generate_shift_stream",
    "synthetic_shift",
    "ScheduledShiftConfig",
    "generate_scheduled_shift_stream",
    "scheduled_shift_stream",
    "statistics_table",
    "format_statistics",
]
