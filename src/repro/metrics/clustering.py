"""Silhouette score for representation-quality analysis (paper Fig. 14)."""

from __future__ import annotations

import numpy as np


def pairwise_euclidean(x: np.ndarray) -> np.ndarray:
    """Dense (n, n) Euclidean distance matrix."""
    x = np.asarray(x, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D, got {x.shape}")
    squared = (x**2).sum(axis=1)
    d2 = squared[:, None] + squared[None, :] - 2.0 * (x @ x.T)
    np.fill_diagonal(d2, 0.0)
    return np.sqrt(np.maximum(d2, 0.0))


def silhouette_score(x: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient over samples.

    s(i) = (b(i) − a(i)) / max(a(i), b(i)) where a is the mean intra-cluster
    distance and b the smallest mean distance to another cluster.  Singleton
    clusters contribute 0, following the standard convention.
    """
    x = np.asarray(x, dtype=float)
    labels = np.asarray(labels)
    if len(x) != len(labels):
        raise ValueError(f"{len(x)} samples but {len(labels)} labels")
    classes = np.unique(labels)
    if len(classes) < 2:
        raise ValueError("silhouette requires at least 2 clusters")
    if len(classes) >= len(x):
        raise ValueError("silhouette requires n_clusters < n_samples")
    distances = pairwise_euclidean(x)
    scores = np.zeros(len(x))
    masks = {c: labels == c for c in classes}
    for i in range(len(x)):
        own = masks[labels[i]]
        own_count = own.sum() - 1
        if own_count == 0:
            scores[i] = 0.0
            continue
        a = distances[i][own].sum() / own_count
        b = np.inf
        for c in classes:
            if c == labels[i]:
                continue
            other = masks[c]
            b = min(b, distances[i][other].mean())
        scores[i] = (b - a) / max(a, b) if max(a, b) > 0 else 0.0
    return float(scores.mean())
