"""Classification metrics: accuracy and F1 in micro/macro/weighted variants.

The paper reports "F1 Score" for dynamic node classification (Email-EU has
42 classes, GDELT 81); we default to the weighted variant and expose all
three for sensitivity checks.
"""

from __future__ import annotations

from typing import Dict, Literal

import numpy as np

Average = Literal["micro", "macro", "weighted"]


def accuracy(labels: np.ndarray, predictions: np.ndarray) -> float:
    labels = np.asarray(labels)
    predictions = np.asarray(predictions)
    if labels.shape != predictions.shape:
        raise ValueError(f"shape mismatch {labels.shape} vs {predictions.shape}")
    if labels.size == 0:
        raise ValueError("cannot compute accuracy of empty arrays")
    return float((labels == predictions).mean())


def _per_class_counts(
    labels: np.ndarray, predictions: np.ndarray
) -> Dict[str, np.ndarray]:
    classes = np.unique(np.concatenate([labels, predictions]))
    tp = np.array([np.sum((predictions == c) & (labels == c)) for c in classes], float)
    fp = np.array([np.sum((predictions == c) & (labels != c)) for c in classes], float)
    fn = np.array([np.sum((predictions != c) & (labels == c)) for c in classes], float)
    support = np.array([np.sum(labels == c) for c in classes], float)
    return {"classes": classes, "tp": tp, "fp": fp, "fn": fn, "support": support}


def f1_score(
    labels: np.ndarray,
    predictions: np.ndarray,
    average: Average = "weighted",
) -> float:
    """F1 with the chosen averaging; classes absent from labels contribute 0.

    Micro-F1 over a single-label task equals accuracy; that identity is one
    of the test-suite cross-checks.
    """
    labels = np.asarray(labels)
    predictions = np.asarray(predictions)
    if labels.shape != predictions.shape or labels.ndim != 1:
        raise ValueError(
            f"labels {labels.shape} and predictions {predictions.shape} "
            "must be equal 1-D"
        )
    if labels.size == 0:
        raise ValueError("cannot compute F1 of empty arrays")
    counts = _per_class_counts(labels, predictions)
    tp, fp, fn = counts["tp"], counts["fp"], counts["fn"]
    if average == "micro":
        denom = 2 * tp.sum() + fp.sum() + fn.sum()
        return float(2 * tp.sum() / denom) if denom else 0.0
    denom = 2 * tp + fp + fn
    f1_per_class = np.where(denom > 0, 2 * tp / np.maximum(denom, 1e-12), 0.0)
    if average == "macro":
        return float(f1_per_class.mean())
    if average == "weighted":
        support = counts["support"]
        total = support.sum()
        if total == 0:
            return 0.0
        return float((f1_per_class * support).sum() / total)
    raise ValueError(f"unknown average {average!r}")


def confusion_matrix(
    labels: np.ndarray, predictions: np.ndarray, num_classes: int
) -> np.ndarray:
    """Dense (num_classes, num_classes) confusion matrix; rows = true class."""
    labels = np.asarray(labels, dtype=np.int64)
    predictions = np.asarray(predictions, dtype=np.int64)
    if labels.shape != predictions.shape:
        raise ValueError(f"shape mismatch {labels.shape} vs {predictions.shape}")
    if labels.size and (
        labels.max() >= num_classes or predictions.max() >= num_classes
    ):
        raise ValueError("class index out of range")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix
