"""Ranking metrics: ROC-AUC (anomaly detection) and NDCG@k (affinity).

Implemented from scratch (no sklearn in this environment) with careful tie
handling; both are cross-checked against brute-force definitions in tests.
"""

from __future__ import annotations

import numpy as np
from scipy import stats


def roc_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) identity.

    Ties in ``scores`` receive average ranks, which matches the trapezoidal
    ROC convention.  Raises if only one class is present.
    """
    labels = np.asarray(labels)
    scores = np.asarray(scores, dtype=float)
    if labels.shape != scores.shape or labels.ndim != 1:
        raise ValueError(
            f"labels {labels.shape} and scores {scores.shape} must be equal 1-D"
        )
    positive = labels == 1
    n_pos = int(positive.sum())
    n_neg = len(labels) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError(
            f"AUC undefined with n_pos={n_pos}, n_neg={n_neg}; need both classes"
        )
    ranks = stats.rankdata(scores)  # average ranks for ties
    rank_sum = ranks[positive].sum()
    return float((rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def dcg_at_k(relevances: np.ndarray, k: int) -> float:
    """Discounted cumulative gain of a relevance list truncated at ``k``."""
    relevances = np.asarray(relevances, dtype=float)[:k]
    if relevances.size == 0:
        return 0.0
    discounts = 1.0 / np.log2(np.arange(2, relevances.size + 2))
    return float((relevances * discounts).sum())


def ndcg_at_k(
    true_relevance: np.ndarray, predicted_scores: np.ndarray, k: int = 10
) -> float:
    """NDCG@k of one query: rank items by ``predicted_scores``, gain =
    ``true_relevance``.  Returns 0.0 when the query has no relevant items."""
    true_relevance = np.asarray(true_relevance, dtype=float)
    predicted_scores = np.asarray(predicted_scores, dtype=float)
    if true_relevance.shape != predicted_scores.shape or true_relevance.ndim != 1:
        raise ValueError("relevance and scores must be equal-shape 1-D arrays")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    ideal = dcg_at_k(np.sort(true_relevance)[::-1], k)
    if ideal == 0:
        return 0.0
    order = np.argsort(-predicted_scores, kind="stable")
    achieved = dcg_at_k(true_relevance[order], k)
    return float(achieved / ideal)


def mean_ndcg_at_k(
    true_relevance: np.ndarray, predicted_scores: np.ndarray, k: int = 10
) -> float:
    """Row-wise NDCG@k averaged over queries with at least one relevant item.

    This is the node-affinity-prediction metric of the Temporal Graph
    Benchmark, used for TGBN-trade / TGBN-genre in the paper.
    """
    true_relevance = np.atleast_2d(np.asarray(true_relevance, dtype=float))
    predicted_scores = np.atleast_2d(np.asarray(predicted_scores, dtype=float))
    if true_relevance.shape != predicted_scores.shape:
        raise ValueError(
            f"shape mismatch {true_relevance.shape} vs {predicted_scores.shape}"
        )
    values = []
    for rel, score in zip(true_relevance, predicted_scores):
        if rel.sum() > 0:
            values.append(ndcg_at_k(rel, score, k))
    if not values:
        raise ValueError("no query rows with positive relevance")
    return float(np.mean(values))
