"""``repro.metrics`` — evaluation metrics used in the paper's experiments:
AUC (anomaly detection), F1 (node classification), NDCG@10 (affinity), and
silhouette (representation quality, Fig. 14)."""

from repro.metrics.classification import accuracy, confusion_matrix, f1_score
from repro.metrics.clustering import pairwise_euclidean, silhouette_score
from repro.metrics.ranking import dcg_at_k, mean_ndcg_at_k, ndcg_at_k, roc_auc

__all__ = [
    "accuracy",
    "confusion_matrix",
    "f1_score",
    "pairwise_euclidean",
    "silhouette_score",
    "roc_auc",
    "ndcg_at_k",
    "mean_ndcg_at_k",
    "dcg_at_k",
]
