"""Automatic feature selection across heterogeneous datasets.

Demonstrates SPLASH's §IV-B mechanism: for each dataset, the three
augmentation processes (random / positional / structural) are scored by
linear empirical risks over multiple chronological splits, and the lowest
total risk wins — with no labels from the test period and no TGNN training.

Usage:  python examples/feature_selection_demo.py
"""

import numpy as np

from repro.datasets import email_eu_like, reddit_like, tgbn_trade_like
from repro.features import default_processes
from repro.models.context import build_context_bundle
from repro.selection import FeatureSelector


def main() -> None:
    datasets = [
        email_eu_like(seed=0, num_edges=3000),
        reddit_like(seed=0, num_edges=3000),
        tgbn_trade_like(seed=0),
    ]
    for dataset in datasets:
        split = dataset.split()
        processes = default_processes(16, seed=0)
        train_stream = dataset.train_stream(split)
        for process in processes:
            process.fit(train_stream, dataset.ctdg.num_nodes)
        bundle = build_context_bundle(dataset.ctdg, dataset.queries, 10, processes)
        available = np.concatenate([split.train_idx, split.val_idx])

        result = FeatureSelector(rng=0).select(bundle, dataset.task, available)
        print(f"\n{dataset.name} ({dataset.task.name})")
        print(f"  selected: {result.selected}")
        print(f"  split fractions used: {result.split_fractions}")
        for name in result.ranking():
            risks = " ".join(f"{r:6.3f}" for r in result.per_split_risks[name])
            print(
                f"  {name:11s} total={result.total_risks[name]:7.3f}  "
                f"per-split: {risks}"
            )


if __name__ == "__main__":
    main()
