"""Adaptation demo: a serving loop that survives a mid-stream shift.

The full drift-aware production loop on a stream with one scheduled
regime change (``scheduled_shift_stream``):

1. train SPLASH on the (stationary, pre-shift) training period;
2. serve the stream twice from the same starting pipeline:
   * **frozen** — the PR-3 serving loop, one artifact forever;
   * **adaptive** — ``repro.adapt.AdaptiveService``: a ``DriftMonitor``
     rides store ingest, a trigger policy converts divergence scores into
     re-fit alarms, each alarm re-runs SPLASH (selection + SLIM) on the
     sliding window, a shadow gate scores the candidate against the
     current model on held-out recent queries, and winners are hot-swapped
     in (with a window-warmed store) and versioned in a ``ModelRegistry``;
3. compare post-shift accuracy and show the drift-score series, the
   re-fit audit trail, and the registry contents.

Usage:  python examples/adaptation_demo.py [--edges 5000] [--intensity 80]
                                           [--shift-at 0.5] [--seed 0]
                                           [--registry DIR]
"""

import argparse
import os
import tempfile

import numpy as np

from repro.adapt import AdaptationConfig, AdaptiveService, ModelRegistry
from repro.datasets import scheduled_shift_stream
from repro.models import ModelConfig
from repro.pipeline import Splash, SplashConfig
from repro.serving import PredictionService


def train_pipeline(dataset, seed):
    config = SplashConfig(
        feature_dim=16,
        k=10,
        model=ModelConfig(hidden_dim=32, epochs=10, patience=4,
                          batch_size=128, lr=3e-3, seed=seed),
        split_fractions=[0.5, 0.7],
        seed=seed,
    )
    splash = Splash(config)
    splash.fit(dataset)
    return splash


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--edges", type=int, default=5000)
    parser.add_argument("--intensity", type=float, default=80.0)
    parser.add_argument("--shift-at", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--registry", default=None,
                        help="registry directory (default: a temp dir)")
    args = parser.parse_args()

    dataset = scheduled_shift_stream(
        shift_at=args.shift_at, intensity=args.intensity,
        seed=args.seed, num_edges=args.edges,
    )
    shift_time = dataset.metadata["shift_times"][0]
    print(f"dataset: {dataset.summary()}")
    print(f"scheduled shift at t={shift_time:.0f} "
          f"(intensity {args.intensity:.0f})")

    split = dataset.split()
    post_shift = split.test_idx[dataset.queries.times[split.test_idx] > shift_time]

    # 1. One pipeline, trained on the pre-shift training period.
    print("\n-- training SPLASH on the training period --")
    frozen_splash = train_pipeline(dataset, args.seed)
    print(f"selected process: {frozen_splash.selected_process}")

    # 2a. Frozen baseline (PR-3 serving: one artifact forever).
    frozen = PredictionService.from_splash(frozen_splash, dataset.ctdg.num_nodes)
    frozen_scores = frozen.serve_stream(
        dataset.ctdg, dataset.queries.nodes, dataset.queries.times,
        background=False,
    )
    frozen_post = dataset.task.evaluate(frozen_scores[post_shift], post_shift)

    # 2b. Adaptive loop from the same starting point.
    print("\n-- adaptive serving (monitor -> trigger -> refit -> gate) --")
    registry_dir = args.registry or os.path.join(
        tempfile.mkdtemp(prefix="adaptation-demo-"), "registry"
    )
    adaptive = AdaptiveService(
        train_pipeline(dataset, args.seed),
        dataset.ctdg.num_nodes,
        config=AdaptationConfig(
            window_edges=max(600, args.edges // 4),
            window_queries=max(500, args.edges // 5),
            check_every=256,
            threshold=0.12,
            min_window_queries=80,
            background=False,
        ),
        registry=ModelRegistry(registry_dir),
    )
    adaptive_scores = adaptive.serve_labeled_stream(
        dataset.ctdg, dataset.queries.nodes, dataset.queries.times,
        dataset.task.labels, ingest_batch=256,
    )
    adaptive_post = dataset.task.evaluate(adaptive_scores[post_shift], post_shift)

    print("\ndrift-score series (edges -> total divergence):")
    stride = max(1, len(adaptive.monitor.history) // 10)
    for edges, scores in adaptive.monitor.history[::stride]:
        bar = "#" * int(min(scores.total, 1.0) * 40)
        marker = " <- shift" if abs(edges - shift_time) < 300 else ""
        print(f"  {edges:>7d}  {scores.total:6.3f}  {bar}{marker}")

    print("\nre-fit audit trail:")
    for outcome in adaptive.outcomes:
        print(f"  @{outcome.triggered_at_edges} edges: {outcome.reason}")

    print("\nregistry:")
    registry = adaptive.registry
    for entry in registry.versions:
        active = " (active)" if entry.version == registry.active_version else ""
        print(f"  v{entry.version:04d}{active}  {entry.note}  "
              f"shadow {entry.metrics.get('shadow_candidate', float('nan')):.3f} "
              f"vs {entry.metrics.get('shadow_current', float('nan')):.3f}  "
              f"drift {entry.drift.get('total', float('nan')):.3f}")
    print(f"  [{registry_dir}]")

    summary = adaptive.summary()
    print(f"\npost-shift {dataset.task.metric_name}:")
    print(f"  frozen artifact : {frozen_post:.4f}")
    print(f"  adaptive service: {adaptive_post:.4f} "
          f"({summary['promotions']} promotion(s), "
          f"{summary['rejections']} rejection(s))")
    gain = adaptive_post - frozen_post
    print(f"  recovered: {gain:+.4f}")
    if np.isfinite(gain) and gain <= 0 and summary["promotions"] == 0:
        print("  (no refit was promoted — try a lower --threshold or "
              "longer stream)")


if __name__ == "__main__":
    main()
