"""Using the library on your own edge stream.

Shows the full public-API path a downstream user would follow:

1. build a :class:`~repro.streams.CTDG` from raw (src, dst, time) records;
2. persist/reload it as CSV;
3. define label queries and a task;
4. wrap everything into a :class:`~repro.datasets.StreamDataset`;
5. train SPLASH and inspect predictions.

The stream here is a small two-community network whose node class is the
community — replace the synthesiser with your own data loader.

Usage:  python examples/custom_stream.py
"""

import os
import tempfile

import numpy as np

from repro.datasets import StreamDataset
from repro.models import ModelConfig
from repro.pipeline import Splash, SplashConfig
from repro.streams import CTDG, read_csv, write_csv
from repro.tasks import ClassificationTask, QuerySet


def synthesize_raw_records(num_edges: int = 2500, seed: int = 0):
    """Stand-in for your data source: returns (src, dst, time) arrays."""
    rng = np.random.default_rng(seed)
    n = 80
    community = np.arange(n) % 4
    src, dst, times = [], [], []
    t = 0.0
    while len(src) < num_edges:
        t += rng.exponential(1.0)
        a = int(rng.integers(0, n))
        same = np.nonzero(community == community[a])[0]
        other = np.nonzero(community != community[a])[0]
        b = int(rng.choice(same if rng.random() < 0.9 else other))
        if a == b:
            continue
        src.append(a)
        dst.append(b)
        times.append(t)
    return np.array(src), np.array(dst), np.array(times), community


def main() -> None:
    src, dst, times, community = synthesize_raw_records()

    # 1-2. Build the stream and round-trip it through CSV.
    stream = CTDG(src, dst, times, num_nodes=80)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "stream.csv")
        write_csv(stream, path)
        stream = read_csv(path, num_nodes=80)
    print(f"stream: {stream}")

    # 3. Label queries: each edge's source node, labelled by its community.
    queries = QuerySet(stream.src.copy(), stream.times.copy())
    task = ClassificationTask(community[stream.src], num_classes=4)

    # 4-5. Dataset + SPLASH.
    dataset = StreamDataset(name="custom", ctdg=stream, queries=queries, task=task)
    splash = Splash(
        SplashConfig(
            feature_dim=16,
            k=10,
            model=ModelConfig(hidden_dim=48, epochs=40, patience=8, lr=3e-3, seed=0),
        )
    )
    splash.fit(dataset)
    print(f"selected process: {splash.selected_process}")
    print(f"test F1: {splash.evaluate():.3f}")

    # Inspect a few raw predictions.
    test_rows = splash.split.test_idx[:5]
    scores = splash.predict_scores(test_rows)
    for row, logits in zip(test_rows, scores):
        node = queries.nodes[row]
        print(
            f"  node {node:2d} at t={queries.times[row]:8.1f} "
            f"→ predicted class {int(np.argmax(logits))} (true {community[node]})"
        )


if __name__ == "__main__":
    main()
