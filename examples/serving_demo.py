"""Serving demo: train once, persist, serve the stream live.

The full production loop of the serving subsystem on a synthetic
distribution-shift stream:

1. train SPLASH on the training period (augment → select → SLIM);
2. ``Splash.save`` the pipeline as a persistent artifact directory;
3. ``Splash.load`` it into a fresh :class:`PredictionService` — the
   trained session is gone, only the artifact remains;
4. replay the edge/query stream through the service with background
   ingestion, scoring the test-period queries from *live* incremental
   state (bit-identical contexts to an offline replay);
5. report ingest/query throughput, p50/p99 latency, and metric parity
   with the offline evaluator.

Usage:  python examples/serving_demo.py [--edges 4000] [--shift 70]
                                        [--seed 0] [--dtype {float32,float64}]
"""

import argparse
import os
import tempfile

import numpy as np

from repro.datasets import synthetic_shift
from repro.models import ModelConfig
from repro.nn import set_default_dtype
from repro.pipeline import ExecutionConfig, Splash, SplashConfig
from repro.serving import PredictionService


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--edges", type=int, default=4000)
    parser.add_argument("--shift", type=float, default=70.0,
                        help="distribution-shift intensity in [0, 100]")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--dtype", choices=["float32", "float64"], default="float64")
    args = parser.parse_args()

    set_default_dtype(args.dtype)
    dataset = synthetic_shift(args.shift, seed=args.seed, num_edges=args.edges)
    print(f"dataset: {dataset.summary()}")

    # 1. Train on the stream's training period.
    config = SplashConfig(
        feature_dim=24,
        k=10,
        model=ModelConfig(hidden_dim=48, epochs=25, patience=6, lr=3e-3,
                          batch_size=128, seed=args.seed),
        execution=ExecutionConfig(dtype=args.dtype),
        seed=args.seed,
    )
    splash = Splash(config)
    splash.fit(dataset)
    offline_metric = splash.evaluate()
    print(f"selected process: {splash.selected_process}")
    print(f"offline test {dataset.task.metric_name}: {offline_metric:.4f}")

    with tempfile.TemporaryDirectory() as tmp:
        # 2-3. Persist, then load into a service as a deployment would.
        artifact = splash.save(os.path.join(tmp, "splash-artifact"))
        print(f"artifact saved: {sorted(os.listdir(artifact))}")
        loaded = Splash.load(artifact)
        service = PredictionService.from_splash(
            loaded,
            num_nodes=dataset.ctdg.num_nodes,
            edge_feature_dim=dataset.ctdg.edge_feature_dim,
            task=dataset.task,
        )

        # 4. Replay the recorded stream as if it were arriving live:
        # edges ingested in micro-batches on a background thread, queries
        # scored against the state at their §III-correct position.
        scores = service.serve_stream(
            dataset.ctdg,
            dataset.queries.nodes,
            dataset.queries.times,
            ingest_batch=512,
            background=True,
        )

        # 5. Throughput/latency plus parity with the offline evaluator.
        summary = service.metrics.summary()
        print("\n--- serving metrics ---")
        print(f"ingested          {summary['ingest_events']} events "
              f"@ {summary['ingest_events_per_s']:.0f} ev/s")
        print(f"queries scored    {summary['query_count']} "
              f"({summary['batch_count']} micro-batches, "
              f"{summary['queries_per_s']:.0f} q/s)")
        print(f"query latency     p50 {summary['query_p50_ms']:.3f} ms   "
              f"p99 {summary['query_p99_ms']:.3f} ms")
        print(f"wall clock        {summary['wall_seconds']:.2f} s")

        test_idx = splash.split.test_idx
        served_metric = dataset.task.evaluate(scores[test_idx], test_idx)
        print("\n--- parity with offline evaluation ---")
        print(f"offline {dataset.task.metric_name}: {offline_metric:.6f}")
        print(f"served  {dataset.task.metric_name}: {served_metric:.6f}")
        drift = abs(served_metric - offline_metric)
        print(f"|difference|: {drift:.2e} "
              "(contexts are bit-identical; scores differ only by "
              "forward-batch rounding)")
        offline_scores = splash.predict_scores(np.arange(len(dataset.queries)))
        print(f"max |score delta| vs offline: "
              f"{np.max(np.abs(scores - offline_scores)):.2e}")


if __name__ == "__main__":
    main()
