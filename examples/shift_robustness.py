"""Distribution-shift robustness sweep (a miniature of the paper's Fig. 12).

Generates Synthetic-{30,60,90} streams with increasing shift intensity and
compares SPLASH against a featureless TGNN and its +RF variant.  Expect
SPLASH to stay accurate while the baselines degrade or collapse.

Usage:  python examples/shift_robustness.py
"""

from repro.datasets import synthetic_shift
from repro.models import ModelConfig
from repro.pipeline import prepare_experiment, run_method


def main() -> None:
    intensities = [30, 60, 90]
    methods = ["splash", "tgat+rf", "tgat"]
    config = ModelConfig(hidden_dim=48, epochs=25, patience=6, lr=3e-3, seed=0)

    series = {method: [] for method in methods}
    for intensity in intensities:
        dataset = synthetic_shift(intensity, seed=0, num_edges=3500)
        prepared = prepare_experiment(dataset, k=10, feature_dim=16, seed=0)
        for method in methods:
            result = run_method(method, prepared, config)
            series[method].append(result.test_metric)

    print("\nshift intensity:  " + "  ".join(f"{i:>6d}" for i in intensities))
    for method, values in series.items():
        row = "  ".join(f"{100 * v:6.1f}" for v in values)
        print(f"{method:14s}  {row}")
    print("\n(F1, %; higher is better — note how the featureless baseline sits"
          "\n near chance while SPLASH degrades gracefully)")


if __name__ == "__main__":
    main()
