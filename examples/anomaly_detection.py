"""Dynamic anomaly detection on a Reddit-like interaction stream.

Trains SPLASH and the unsupervised SLADE baseline, compares AUC, and prints
a qualitative anomaly-score trace for one user that transitions between
normal and abnormal states (the paper's Fig. 13 analysis).

Usage:  python examples/anomaly_detection.py [--edges 3000]
"""

import argparse

import numpy as np

from repro.datasets import reddit_like
from repro.models import ModelConfig, create_model
from repro.pipeline import prepare_experiment, run_method


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--edges", type=int, default=3000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    dataset = reddit_like(seed=args.seed, num_edges=args.edges)
    ratio = float(np.mean(dataset.task.labels))
    print(f"dataset: {dataset.name}, abnormal query ratio {ratio:.3f}")

    prepared = prepare_experiment(dataset, k=10, feature_dim=16, seed=args.seed)
    config = ModelConfig(hidden_dim=48, epochs=30, patience=6, lr=3e-3, seed=args.seed)

    for method in ("splash", "slade+rf", "tgat+rf"):
        result = run_method(method, prepared, config)
        extra = (
            f" (selected {result.selected_process})" if result.selected_process else ""
        )
        print(f"{result.method:10s} test AUC = {result.test_metric:.3f}{extra}")

    # ------------------------------------------------------------------
    # Qualitative trace (Fig. 13): anomaly scores over time for one user
    # with at least one abnormal episode in the test period.
    # ------------------------------------------------------------------
    splash_model = create_model("slim+structural", prepared.bundle, config)
    splash_model.fit(
        prepared.bundle, dataset.task, prepared.split.train_idx, prepared.split.val_idx
    )
    test_idx = prepared.split.test_idx
    labels = dataset.task.labels[test_idx]
    nodes = dataset.queries.nodes[test_idx]
    flagged = nodes[labels == 1]
    if flagged.size == 0:
        print("no abnormal test queries generated for this seed")
        return
    target_user = int(flagged[0])
    user_rows = test_idx[nodes == target_user]
    scores = splash_model.predict_scores(prepared.bundle, user_rows)
    truth = dataset.task.labels[user_rows]
    print(f"\nanomaly-score trace for user {target_user} "
          f"({truth.sum()}/{len(truth)} abnormal queries):")
    for row, score, label in zip(user_rows[:30], scores[:30], truth[:30]):
        time = dataset.queries.times[row]
        bar = "#" * int(score * 40)
        print(f"  t={time:9.1f}  state={'ABNORMAL' if label else 'normal  '} "
              f"score={score:.3f} {bar}")


if __name__ == "__main__":
    main()
