"""Fleet demo: one `serve()` call, two topologies, identical bits.

The horizontally sharded serving fleet on a synthetic stream:

1. train SPLASH once;
2. ``serve()`` the artifact twice — single in-process service
   (``num_shards=0``) and a 3-shard fleet — through the same
   :class:`ServingClient` protocol;
3. replay the same edge/query stream through both and verify the fleet's
   scores are **bit-for-bit equal** to the single service's;
4. SIGKILL one fleet worker mid-stream, warm-restart it from its shard's
   persistence root plus the router's catch-up ring, and keep serving;
5. scrape the router's pooled metrics: every worker's registry appears
   under its ``proc=shardN`` label next to the router-side series.

Usage:  python examples/fleet_serving_demo.py [--edges 3000] [--shards 3]
                                              [--seed 0]
"""

import argparse
import os
import tempfile

import numpy as np

from repro import obs
from repro.datasets import synthetic_shift
from repro.models import ModelConfig
from repro.pipeline import Splash, SplashConfig
from repro.serving import ServingConfig, serve
from repro.serving.fleet import shard_root


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--edges", type=int, default=3000)
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    # Metrics mode propagates to the fleet's worker processes, so one
    # pooled scrape later covers every shard.
    obs.configure(mode="metrics")
    dataset = synthetic_shift(60.0, seed=args.seed, num_edges=args.edges)
    g = dataset.ctdg
    print(f"dataset: {dataset.summary()}")

    splash = Splash(
        SplashConfig(
            feature_dim=16,
            k=8,
            model=ModelConfig(hidden_dim=32, epochs=10, patience=4,
                              batch_size=128, seed=args.seed),
            seed=args.seed,
        )
    )
    splash.fit(dataset)
    print(f"selected process: {splash.selected_process}")

    # 2-3. Same stream through both topologies via the one front door.
    with serve(splash, num_nodes=g.num_nodes,
               edge_feature_dim=g.edge_feature_dim,
               task=dataset.task) as single:
        single_scores = single.serve_stream(
            g, dataset.queries.nodes, dataset.queries.times, ingest_batch=256
        )
        # Probe against the fully-ingested state — the reference for the
        # post-restart bit-equality check below.
        probe_nodes = dataset.queries.nodes[:64]
        probe_times = dataset.queries.times[-1] * np.ones(64)
        single_probe = single.predict(probe_nodes, probe_times)

    with tempfile.TemporaryDirectory() as tmp, serve(
        splash,
        num_nodes=g.num_nodes,
        edge_feature_dim=g.edge_feature_dim,
        task=dataset.task,
        config=ServingConfig(
            num_shards=args.shards,
            persist_path=os.path.join(tmp, "fleet"),
            snapshot_every=500,
            # §III interleave splits ingest into many small blocks (one per
            # edge run between queries), so size the ring in blocks, not
            # edges: it must bridge snapshot → stream end.
            catchup_ring=2048,
        ),
    ) as fleet:
        router = fleet.backend
        print(f"\nfleet up: {router.num_shards} shards, pids "
              f"{[s['pid'] for s in fleet.health()['shards']]}")
        fleet_scores = fleet.serve_stream(
            g, dataset.queries.nodes, dataset.queries.times, ingest_batch=256
        )
        identical = (
            single_scores.dtype == fleet_scores.dtype
            and np.array_equal(single_scores, fleet_scores)
        )
        print(f"single vs fleet scores bit-identical: {identical}")

        # 4. Crash drill: SIGKILL shard 1, warm-restart, keep serving.
        victim = 1 % router.num_shards
        router.kill_shard(victim)
        print(f"\nkilled shard {victim} (SIGKILL, no flush)")
        info = router.restart_shard(victim)
        print(f"restarted: {info['resumed']} events from "
              f"{shard_root(os.path.join(tmp, 'fleet'), victim)!r} snapshot, "
              f"{info['replayed']} replayed from the catch-up ring")
        health = fleet.health()
        print(f"healthy={health['healthy']} "
              f"edges_ingested={health['edges_ingested']}")
        probe = fleet.predict(probe_nodes, probe_times)
        print(f"post-restart predictions still bit-identical: "
              f"{np.array_equal(probe, single_probe)}")

        # 5. Pooled telemetry: one scrape covers the whole fleet.
        text = router.pooled_registry().render_prometheus()
        shards_seen = sorted(
            {part.split('"')[1] for part in text.split("proc=")[1:]}
        )
        print(f"\npooled /metrics covers workers: {shards_seen}")
        print(f"router series present: "
              f"{'fleet_ingest_events_total' in text}")

        summary = fleet.metrics.summary()
        print("\n--- router metrics ---")
        print(f"ingested          {summary['ingest_events']} events")
        print(f"queries scored    {summary['query_count']} "
              f"({summary['batch_count']} micro-batches)")
        print(f"query latency     p50 {summary['query_p50_ms']:.3f} ms   "
              f"p99 {summary['query_p99_ms']:.3f} ms")

    if not identical:
        raise SystemExit("fleet diverged from single-process service")


if __name__ == "__main__":
    main()
