"""Observability demo: full telemetry over an adaptive serving run.

Runs the drift-adaptation drill (a scheduled mid-stream shift served by
``AdaptiveService``) with ``repro.obs`` tracing on, and shows every
telemetry surface the subsystem exposes:

1. a **mid-run Prometheus snapshot** (``obs.render_prometheus()``) after
   the first half of the stream — live counters/gauges/histograms from
   the serving, store, and adaptation layers while the run is in flight;
2. the **drift gauges** reacting to the shift in the second half;
3. the finished run's **JSONL trace** summarised into a per-span latency
   table (the same view as ``python -m repro.obs.summarize <trace>``),
   after schema validation.

Usage:  python examples/observability_demo.py [--edges 4000]
                                              [--intensity 70]
                                              [--shift-at 0.5] [--seed 0]
                                              [--trace PATH]
"""

import argparse
import os
import tempfile

import numpy as np

from repro import obs
from repro.adapt import AdaptationConfig, AdaptiveService
from repro.datasets import scheduled_shift_stream
from repro.models import ModelConfig
from repro.obs.summarize import load_events, render_table, summarize, validate_trace
from repro.pipeline import Splash, SplashConfig
from repro.streams.ctdg import CTDG


def train_pipeline(dataset, seed):
    config = SplashConfig(
        feature_dim=16,
        k=10,
        model=ModelConfig(hidden_dim=32, epochs=8, patience=4,
                          batch_size=128, lr=3e-3, seed=seed),
        split_fractions=[0.5, 0.7],
        seed=seed,
    )
    splash = Splash(config)
    splash.fit(dataset)
    return splash


def half_streams(dataset):
    """Split stream + queries at the edge midpoint time (state carries
    over between the two serve calls, so this equals one full pass)."""
    ctdg = dataset.ctdg
    mid = ctdg.num_edges // 2
    t_split = float(ctdg.times[mid - 1])
    q_split = int(np.searchsorted(dataset.queries.times, t_split, side="right"))

    def slice_ctdg(lo, hi):
        return CTDG(
            ctdg.src[lo:hi], ctdg.dst[lo:hi], ctdg.times[lo:hi],
            None if ctdg.edge_features is None else ctdg.edge_features[lo:hi],
            ctdg.weights[lo:hi], num_nodes=ctdg.num_nodes,
        )

    halves = []
    for (elo, ehi), (qlo, qhi) in (
        ((0, mid), (0, q_split)),
        ((mid, ctdg.num_edges), (q_split, len(dataset.queries))),
    ):
        halves.append((
            slice_ctdg(elo, ehi),
            dataset.queries.nodes[qlo:qhi],
            dataset.queries.times[qlo:qhi],
            dataset.task.labels[qlo:qhi],
        ))
    return halves


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--edges", type=int, default=4000)
    parser.add_argument("--intensity", type=float, default=70.0)
    parser.add_argument("--shift-at", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trace", default=None,
                        help="trace JSONL destination (default: a temp file)")
    args = parser.parse_args()

    trace_path = args.trace or os.path.join(
        tempfile.mkdtemp(prefix="obs-demo-"), "trace.jsonl"
    )
    dataset = scheduled_shift_stream(
        shift_at=args.shift_at, intensity=args.intensity,
        seed=args.seed, num_edges=args.edges,
    )
    shift_time = dataset.metadata["shift_times"][0]
    print(f"dataset: {dataset.summary()}")
    print(f"scheduled shift at t={shift_time:.0f}; trace -> {trace_path}")

    # Tracing covers training too: the replay spans below come from fit.
    obs.configure("trace", trace_path=trace_path)

    print("\n-- training SPLASH (traced: replay.* spans) --")
    splash = train_pipeline(dataset, args.seed)
    print(f"selected process: {splash.selected_process}")

    adaptive = AdaptiveService(
        splash,
        dataset.ctdg.num_nodes,
        config=AdaptationConfig(
            window_edges=max(600, args.edges // 4),
            window_queries=max(500, args.edges // 5),
            check_every=256,
            threshold=0.12,
            min_window_queries=80,
            background=False,
        ),
    )

    first, second = half_streams(dataset)
    print("\n-- serving first half (pre-shift) --")
    scores = [adaptive.serve_labeled_stream(*first, ingest_batch=256)]

    print("\n===== mid-run Prometheus snapshot =====")
    print(obs.render_prometheus(), end="")

    print("\n-- serving second half (through the shift) --")
    scores.append(adaptive.serve_labeled_stream(*second, ingest_batch=256))
    all_scores = np.concatenate(scores, axis=0)

    print("\ndrift gauges after the shift:")
    snap = obs.get_registry().snapshot()
    for key in sorted(snap["gauges"]):
        if key.startswith("adapt.drift"):
            print(f"  {key:32s} {snap['gauges'][key]:.4f}")
    refits = {k: v for k, v in snap["counters"].items()
              if k.startswith("adapt.refits")}
    print(f"  refits: {refits or 'none triggered'}")

    metric = dataset.task.evaluate(all_scores, np.arange(len(all_scores)))
    print(f"\nfull-stream {dataset.task.metric_name}: {metric:.4f}")

    # Close the writer, then read the trace back like the CLI would.
    obs.configure("off")
    events = load_events(trace_path)
    violations = validate_trace(events)
    verdict = "OK" if not violations else f"INVALID ({len(violations)})"
    print(f"\n===== trace summary ({verdict}, {len(events)} events) =====")
    print(render_table(summarize(events)))
    print(f"\n(inspect with: python -m repro.obs.summarize {trace_path} "
          "--validate)")


if __name__ == "__main__":
    main()
