"""Observability demo: full telemetry over an adaptive serving run.

Runs the drift-adaptation drill (a scheduled mid-stream shift served by
``AdaptiveService``) with ``repro.obs`` tracing on, and shows every
telemetry surface the subsystem exposes:

1. a **live HTTP telemetry plane** — ``service.start_telemetry`` binds
   ``/metrics`` (Prometheus text), ``/healthz`` (SLO verdict JSON), and
   ``/statusz``; the demo scrapes ``/metrics`` and ``/healthz`` over a
   real socket mid-run;
2. the **SLO health engine** — stock serving rules, plus (with
   ``--induce-breach``) a deliberately impossible latency budget that
   flips the verdict to degraded/failing and triggers a **flight
   recorder** post-mortem dump;
3. the **drift gauges** reacting to the shift in the second half;
4. the finished run's **JSONL trace** summarised into a per-span latency
   table (the same view as ``python -m repro.obs.summarize <trace>``),
   after schema validation — and the flight dump validated the same way.

Usage:  python examples/observability_demo.py [--edges 4000]
                                              [--intensity 70]
                                              [--shift-at 0.5] [--seed 0]
                                              [--trace PATH]
                                              [--http-port PORT]
                                              [--induce-breach]
                                              [--flight-dir DIR]
"""

import argparse
import json
import os
import tempfile
import urllib.request

import numpy as np

from repro import obs
from repro.adapt import AdaptationConfig, AdaptiveService
from repro.datasets import scheduled_shift_stream
from repro.models import ModelConfig
from repro.obs.slo import LatencyRule, SloEngine, default_serving_rules
from repro.obs.summarize import load_events, render_table, summarize, validate_trace
from repro.pipeline import Splash, SplashConfig
from repro.streams.ctdg import CTDG


def train_pipeline(dataset, seed):
    config = SplashConfig(
        feature_dim=16,
        k=10,
        model=ModelConfig(hidden_dim=32, epochs=8, patience=4,
                          batch_size=128, lr=3e-3, seed=seed),
        split_fractions=[0.5, 0.7],
        seed=seed,
    )
    splash = Splash(config)
    splash.fit(dataset)
    return splash


def half_streams(dataset):
    """Split stream + queries at the edge midpoint time (state carries
    over between the two serve calls, so this equals one full pass)."""
    ctdg = dataset.ctdg
    mid = ctdg.num_edges // 2
    t_split = float(ctdg.times[mid - 1])
    q_split = int(np.searchsorted(dataset.queries.times, t_split, side="right"))

    def slice_ctdg(lo, hi):
        return CTDG(
            ctdg.src[lo:hi], ctdg.dst[lo:hi], ctdg.times[lo:hi],
            None if ctdg.edge_features is None else ctdg.edge_features[lo:hi],
            ctdg.weights[lo:hi], num_nodes=ctdg.num_nodes,
        )

    halves = []
    for (elo, ehi), (qlo, qhi) in (
        ((0, mid), (0, q_split)),
        ((mid, ctdg.num_edges), (q_split, len(dataset.queries))),
    ):
        halves.append((
            slice_ctdg(elo, ehi),
            dataset.queries.nodes[qlo:qhi],
            dataset.queries.times[qlo:qhi],
            dataset.task.labels[qlo:qhi],
        ))
    return halves


def scrape(address, endpoint):
    """Fetch one telemetry endpoint over a real socket; (status, body)."""
    try:
        with urllib.request.urlopen(f"{address}{endpoint}", timeout=5.0) as r:
            return r.status, r.read().decode()
    except urllib.error.HTTPError as error:  # 503 once failing
        return error.code, error.read().decode()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--edges", type=int, default=4000)
    parser.add_argument("--intensity", type=float, default=70.0)
    parser.add_argument("--shift-at", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trace", default=None,
                        help="trace JSONL destination (default: a temp file)")
    parser.add_argument("--http-port", type=int, default=0,
                        help="telemetry HTTP port (default: ephemeral)")
    parser.add_argument("--induce-breach", action="store_true",
                        help="add an impossible SLO so health degrades and "
                             "the flight recorder dumps a post-mortem")
    parser.add_argument("--flight-dir", default=None,
                        help="flight dump directory (default: a temp dir)")
    args = parser.parse_args()

    trace_path = args.trace or os.path.join(
        tempfile.mkdtemp(prefix="obs-demo-"), "trace.jsonl"
    )
    flight_dir = args.flight_dir or tempfile.mkdtemp(prefix="obs-flight-")
    os.makedirs(flight_dir, exist_ok=True)
    dataset = scheduled_shift_stream(
        shift_at=args.shift_at, intensity=args.intensity,
        seed=args.seed, num_edges=args.edges,
    )
    shift_time = dataset.metadata["shift_times"][0]
    print(f"dataset: {dataset.summary()}")
    print(f"scheduled shift at t={shift_time:.0f}; trace -> {trace_path}")

    # Tracing covers training too: the replay spans below come from fit.
    obs.configure("trace", trace_path=trace_path)
    obs.enable_flight_recorder(path=flight_dir + os.sep)

    print("\n-- training SPLASH (traced: replay.* spans) --")
    splash = train_pipeline(dataset, args.seed)
    print(f"selected process: {splash.selected_process}")

    adaptive = AdaptiveService(
        splash,
        dataset.ctdg.num_nodes,
        config=AdaptationConfig(
            window_edges=max(600, args.edges // 4),
            window_queries=max(500, args.edges // 5),
            check_every=256,
            threshold=0.12,
            min_window_queries=80,
            background=False,
        ),
    )

    # The health engine: stock serving SLOs, plus (on request) a trap
    # rule whose budget no real machine can meet.
    rules = default_serving_rules()
    if args.induce_breach:
        rules.append(
            LatencyRule("serving.ingest", 99.0, max_seconds=1e-9,
                        name="demo.trap")
        )
    engine = SloEngine(
        rules, burn_window=4, failing_fraction=0.5,
        flight=obs.get_flight_recorder(),
    )
    server = adaptive.service.start_telemetry(
        port=args.http_port, engine=engine
    )
    print(f"\ntelemetry plane listening on {server.address}")

    first, second = half_streams(dataset)
    print("\n-- serving first half (pre-shift) --")
    scores = [adaptive.serve_labeled_stream(*first, ingest_batch=256)]

    print("\n===== mid-run scrape: GET /metrics (excerpt) =====")
    engine.evaluate()
    status, body = scrape(server.address, "/metrics")
    wanted = ("serving_", "adapt_", "obs_slo_")
    excerpt = [ln for ln in body.splitlines()
               if ln.startswith(wanted) and "_bucket" not in ln]
    print(f"HTTP {status}, {len(body.splitlines())} lines; excerpt:")
    for line in excerpt[:18]:
        print(f"  {line}")

    print("\n===== mid-run scrape: GET /healthz =====")
    status, body = scrape(server.address, "/healthz")
    verdict = json.loads(body)
    print(f"HTTP {status}: status={verdict['status']!r}")
    for rule in verdict["rules"]:
        print(f"  {rule['rule']:28s} {rule['status']:9s} "
              f"breaches={rule['breaches_in_window']}/{rule['window']}")

    print("\n-- serving second half (through the shift) --")
    scores.append(adaptive.serve_labeled_stream(*second, ingest_batch=256))
    all_scores = np.concatenate(scores, axis=0)

    # Re-evaluate until the burn window fills: with --induce-breach the
    # trap rule breaches every evaluation and health escalates
    # degraded → failing.
    for _ in range(engine.burn_window):
        engine.evaluate()
    status, body = scrape(server.address, "/healthz")
    verdict = json.loads(body)
    print(f"\nfinal /healthz: HTTP {status}, status={verdict['status']!r}")
    if args.induce_breach and verdict["status"] == "ok":
        raise SystemExit("breach was requested but health stayed ok")

    print("\ndrift gauges after the shift:")
    snap = obs.get_registry().snapshot()
    for key in sorted(snap["gauges"]):
        if key.startswith("adapt.drift"):
            print(f"  {key:32s} {snap['gauges'][key]:.4f}")
    refits = {k: v for k, v in snap["counters"].items()
              if k.startswith("adapt.refits")}
    print(f"  refits: {refits or 'none triggered'}")

    metric = dataset.task.evaluate(all_scores, np.arange(len(all_scores)))
    print(f"\nfull-stream {dataset.task.metric_name}: {metric:.4f}")

    flight = obs.get_flight_recorder()
    dumps = flight.dumps if flight is not None else []
    if dumps:
        print(f"\nflight recorder dumped {len(dumps)} post-mortem(s):")
        for path in dumps:
            events = load_events(path)
            ok = "OK" if not validate_trace(events) else "INVALID"
            reason = events[0].get("flight", {}).get("reason", "?")
            print(f"  {path} [{ok}] reason={reason}")
    else:
        print("\nflight recorder: no dumps (healthy run)")

    adaptive.service.stop_telemetry()

    # Close the writer, then read the trace back like the CLI would.
    obs.configure("off")
    events = load_events(trace_path)
    violations = validate_trace(events)
    verdict = "OK" if not violations else f"INVALID ({len(violations)})"
    print(f"\n===== trace summary ({verdict}, {len(events)} events) =====")
    print(render_table(summarize(events)))
    print(f"\n(inspect with: python -m repro.obs.summarize {trace_path} "
          "--validate)")
    if dumps:
        print(f"(flight post-mortems: python -m repro.obs.summarize "
              f"{flight_dir} --validate)")


if __name__ == "__main__":
    main()
