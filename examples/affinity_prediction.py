"""Node affinity prediction on a tgbn-trade-like weighted stream.

Predicts each country's next-period trade-share distribution and evaluates
NDCG@10 (the TGB protocol used by the paper), comparing SPLASH against a
baseline TGNN with random features.

Usage:  python examples/affinity_prediction.py
"""

import argparse

import numpy as np

from repro.datasets import tgbn_trade_like
from repro.models import ModelConfig
from repro.pipeline import prepare_experiment, run_method


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    dataset = tgbn_trade_like(seed=args.seed)
    print(f"dataset: {dataset.summary()}")

    prepared = prepare_experiment(dataset, k=10, feature_dim=24, seed=args.seed)
    config = ModelConfig(hidden_dim=48, epochs=30, patience=6, lr=3e-3, seed=args.seed)

    results = []
    for method in ("splash", "slim+rf", "tgat+rf", "tgat"):
        result = run_method(method, prepared, config)
        results.append(result)
        extra = (
            f" (selected {result.selected_process})" if result.selected_process else ""
        )
        print(f"{result.method:10s} NDCG@10 = {result.test_metric:.3f}{extra}")

    # Show one concrete prediction: top-5 predicted partners vs ground truth.
    best = max(results, key=lambda r: r.test_metric)
    print(f"\nbest method: {best.method}")
    targets = dataset.metadata["targets"]
    row = prepared.split.test_idx[0]
    label = np.asarray(dataset.task.labels)[row]
    true_top = targets[np.argsort(-label)[:5]]
    print(
        f"query: country {dataset.queries.nodes[row]} "
        f"at t={dataset.queries.times[row]:.1f}"
    )
    print(f"ground-truth top-5 partners: {true_top.tolist()}")


if __name__ == "__main__":
    main()
