"""Quickstart: train SPLASH on a community-labelled edge stream.

Runs the full pipeline of the paper (feature augmentation → automatic
feature selection → SLIM) on the Email-EU-like synthetic dataset and
reports the chronological test F1.

Usage:  python examples/quickstart.py [--edges 3000] [--seed 0]
                                      [--dtype {float32,float64}]
                                      [--backend {numpy,blas-threaded}]
                                      [--num-threads N]
                                      [--engine {batched,event,sharded}]
                                      [--num-workers N]
                                      [--propagation {blocked,event}]

``--dtype float32`` selects the tensor backend's fast path (half the
memory traffic during SLIM training); float64 is the bit-exact default.
``--backend blas-threaded --num-threads 4`` runs the hot kernels (GEMM,
row gather/scatter, segment counting) on multiple threads — outputs stay
bit-identical to the numpy backend.  ``--engine sharded --num-workers 4``
materialises query contexts from contiguous stream shards in parallel
worker processes (all engines produce bit-identical contexts; see
DESIGN.md §3).  All execution knobs ride on one
:class:`~repro.pipeline.ExecutionConfig`.
"""

import argparse

from repro.datasets import email_eu_like
from repro.models import ModelConfig
from repro.nn import available_backends, set_default_dtype
from repro.pipeline import ExecutionConfig, Splash, SplashConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--edges", type=int, default=3000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--dtype",
        choices=["float32", "float64"],
        default="float64",
        help="tensor backend precision (float32 = fast path)",
    )
    parser.add_argument(
        "--backend",
        choices=sorted(available_backends()),
        default=None,
        help="array backend for the hot kernels (default: ambient backend)",
    )
    parser.add_argument(
        "--num-threads",
        type=int,
        default=None,
        help="kernel threads for --backend blas-threaded",
    )
    parser.add_argument(
        "--engine",
        choices=["batched", "event", "sharded"],
        default="batched",
        help="context replay engine (all three produce identical bundles)",
    )
    parser.add_argument(
        "--num-workers",
        type=int,
        default=0,
        help="worker processes for --engine sharded (0/1 = serial in-process)",
    )
    parser.add_argument(
        "--propagation",
        choices=["blocked", "event"],
        default="blocked",
        help="sequential store pass: block-scatter runs or per-event reference",
    )
    args = parser.parse_args()

    set_default_dtype(args.dtype)
    dataset = email_eu_like(seed=args.seed, num_edges=args.edges)
    print(f"dataset: {dataset.summary()}")

    config = SplashConfig(
        feature_dim=32,
        k=10,
        model=ModelConfig(
            hidden_dim=64, epochs=50, patience=10, lr=3e-3, seed=args.seed
        ),
        execution=ExecutionConfig(
            backend=args.backend,
            num_threads=args.num_threads,
            engine=args.engine,
            num_workers=args.num_workers,
            propagation=args.propagation,
            dtype=args.dtype,
        ),
        seed=args.seed,
    )
    splash = Splash(config)
    splash.fit(dataset)  # chronological 10/10/80 split, as in the paper

    print(f"selected feature process : {splash.selected_process}")
    if splash.selection is not None:
        risks = {k: round(v, 3) for k, v in splash.selection.total_risks.items()}
        print(f"selection risks (Eq. 13) : {risks}")
    print(f"model parameters         : {splash.num_parameters()}")
    print(f"training precision       : {args.dtype}")
    print(f"context engine           : {args.engine}"
          + (f" ({args.num_workers} workers)" if args.engine == "sharded" else ""))
    print(f"test {dataset.task.metric_name:<19}: {splash.evaluate():.4f}")
    print(f"stage timings (s)        : "
          f"{ {k: round(v, 2) for k, v in splash.timer.as_dict().items()} }")


if __name__ == "__main__":
    main()
